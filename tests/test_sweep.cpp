// The sweep execution layer (api/sweep.h) and scenario sharding: run_sweep
// must be bit-identical to serial run_scenario at every worker count and
// chunk size, sharded-and-merged ScenarioResults must reproduce the
// monolithic run exactly on all four runtimes, merge() must reject
// incompatible shards with field-naming errors, and the shard-row JSONL
// round-trips (verify/shard.h).

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "api/scenario.h"
#include "api/sweep.h"
#include "verify/shard.h"

namespace fle {
namespace {

ScenarioSpec ring_spec(const std::string& protocol, int n, std::size_t trials,
                       std::uint64_t seed = 11) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.n = n;
  spec.trials = trials;
  spec.seed = seed;
  return spec;
}

/// Compares every deterministic aggregate (everything except wall time).
void expect_results_equal(const ScenarioResult& a, const ScenarioResult& b,
                          const std::string& what) {
  ASSERT_EQ(a.trials, b.trials) << what;
  ASSERT_EQ(a.outcomes.domain(), b.outcomes.domain()) << what;
  EXPECT_EQ(a.outcomes.fails(), b.outcomes.fails()) << what;
  for (int j = 0; j < a.outcomes.domain(); ++j) {
    EXPECT_EQ(a.outcomes.count(static_cast<Value>(j)),
              b.outcomes.count(static_cast<Value>(j)))
        << what << " leader " << j;
  }
  EXPECT_EQ(a.total_messages, b.total_messages) << what;
  EXPECT_EQ(a.max_messages, b.max_messages) << what;
  EXPECT_EQ(a.total_sync_gap, b.total_sync_gap) << what;
  EXPECT_EQ(a.max_sync_gap, b.max_sync_gap) << what;
  EXPECT_EQ(a.max_rounds, b.max_rounds) << what;
  // The means derive from integer totals, so even the doubles are exact.
  EXPECT_EQ(a.mean_messages, b.mean_messages) << what;
  EXPECT_EQ(a.mean_sync_gap, b.mean_sync_gap) << what;
  EXPECT_EQ(a.protocol_name, b.protocol_name) << what;
  EXPECT_EQ(a.deviation_name, b.deviation_name) << what;
  ASSERT_EQ(a.per_trial.size(), b.per_trial.size()) << what;
  for (std::size_t t = 0; t < a.per_trial.size(); ++t) {
    EXPECT_EQ(a.per_trial[t], b.per_trial[t]) << what << " trial " << t;
  }
}

/// Downsized replicas of the e01–e15 bench specs (every protocol/deviation
/// family the tables sweep; e10 runs no scenarios).  The acceptance
/// criterion: run_sweep over these yields outcome histograms bit-identical
/// to serial run_scenario calls at 1/4/8 workers.
std::vector<ScenarioSpec> bench_like_specs() {
  std::vector<ScenarioSpec> specs;
  {  // e01: Basic-LEAD honest + single adversary
    specs.push_back(ring_spec("basic-lead", 8, 60, 42));
    ScenarioSpec attacked = ring_spec("basic-lead", 8, 40, 7 * 8);
    attacked.deviation = "basic-single";
    attacked.coalition = CoalitionSpec::consecutive(1, 3);
    attacked.target = 6;
    specs.push_back(attacked);
  }
  {  // e02: rushing at k = sqrt(n)
    ScenarioSpec spec = ring_spec("alead-uni", 16, 20, 11 * 16 + 4);
    spec.deviation = "rushing";
    spec.coalition = CoalitionSpec::equally_spaced(4);
    spec.target = 15;
    specs.push_back(spec);
  }
  {  // e03: randomly located adversaries (Bernoulli placement)
    ScenarioSpec spec = ring_spec("alead-uni", 64, 6, 7919);
    spec.deviation = "random-location";
    spec.coalition = CoalitionSpec::bernoulli(0.4, 31);
    spec.target = 3;
    spec.prefix = 3;
    specs.push_back(spec);
  }
  {  // e04: the cubic attack
    ScenarioSpec spec = ring_spec("alead-uni", 64, 8, 64);
    spec.deviation = "cubic";
    spec.coalition = CoalitionSpec::cubic_staircase(8);
    spec.target = 32;
    specs.push_back(spec);
  }
  // e05: the honest resilience-regime baseline
  specs.push_back(ring_spec("alead-uni", 32, 50, 256));
  {  // e06/e07: PhaseAsyncLead vs free-slot rushing
    ScenarioSpec spec = ring_spec("phase-async-lead", 64, 10, 3 * 64);
    spec.protocol_key = 0xd00dull + 64;
    spec.deviation = "phase-rushing";
    spec.coalition = CoalitionSpec::equally_spaced(11);
    spec.target = 42;
    spec.search_cap = 96ull * 64;
    specs.push_back(spec);
  }
  {  // e08: the phase-sum covert channel
    ScenarioSpec spec = ring_spec("phase-sum-lead", 32, 8, 5 * 32);
    spec.deviation = "phase-sum";
    spec.target = 29;
    specs.push_back(spec);
  }
  {  // e09/e11: tree turn games
    ScenarioSpec spec;
    spec.topology = TopologyKind::kTree;
    spec.protocol = "alternating-xor";
    spec.deviation = "xor-last-mover";
    spec.rounds = 4;
    spec.target = 1;
    spec.n = 2;
    spec.trials = 32;
    spec.seed = 9;
    specs.push_back(spec);
  }
  {  // e12: classical comparators (per-trial id permutations)
    specs.push_back(ring_spec("chang-roberts", 16, 25, 16));
    specs.push_back(ring_spec("peterson", 16, 25, 17));
  }
  {  // e13: Shamir on the fully-connected graph, honest + forging coalition
    ScenarioSpec honest;
    honest.topology = TopologyKind::kGraph;
    honest.protocol = "shamir-lead";
    honest.n = 8;
    honest.trials = 12;
    honest.seed = 17 * 8;
    specs.push_back(honest);
    ScenarioSpec forge = honest;
    forge.deviation = "shamir-forge";
    forge.coalition = CoalitionSpec::consecutive(4, 0);
    forge.target = 7;
    specs.push_back(forge);
  }
  {  // e14: full-information baton + greedy coalition
    ScenarioSpec spec;
    spec.topology = TopologyKind::kFullInfo;
    spec.protocol = "baton";
    spec.deviation = "baton-greedy";
    spec.coalition = CoalitionSpec::custom({1, 2, 3, 4});
    spec.target = 7;
    spec.n = 8;
    spec.trials = 50;
    spec.seed = 2024;
    specs.push_back(spec);
  }
  {  // e15: synchronous scenarios (blind collusion + detected rushing)
    ScenarioSpec blind;
    blind.topology = TopologyKind::kSync;
    blind.protocol = "sync-broadcast-lead";
    blind.deviation = "sync-blind-collusion";
    blind.coalition = CoalitionSpec::consecutive(7, 0);
    blind.target = 2;
    blind.n = 8;
    blind.trials = 40;
    blind.seed = 31 * 8;
    specs.push_back(blind);
    ScenarioSpec late = blind;
    late.deviation = "sync-late-broadcast";
    late.coalition = CoalitionSpec::consecutive(1, 1);
    late.trials = 10;
    specs.push_back(late);
  }
  // One threaded replica so the sweep covers all runtime families.
  {
    ScenarioSpec spec = ring_spec("alead-uni", 8, 6, 5);
    spec.topology = TopologyKind::kThreaded;
    spec.record_outcomes = true;
    specs.push_back(spec);
  }
  return specs;
}

TEST(RunSweep, MatchesSerialRunScenarioOnBenchSpecs) {
  const std::vector<ScenarioSpec> specs = bench_like_specs();
  std::vector<ScenarioResult> serial;
  for (ScenarioSpec spec : specs) {
    spec.threads = 1;
    serial.push_back(run_scenario(spec));
  }
  for (const int threads : {1, 4, 8}) {
    for (const std::size_t chunk : {std::size_t{0}, std::size_t{3}}) {
      SweepSpec sweep;
      sweep.scenarios = specs;
      sweep.threads = threads;
      sweep.chunk = chunk;
      const std::vector<ScenarioResult> batched = run_sweep(sweep);
      ASSERT_EQ(batched.size(), serial.size());
      for (std::size_t i = 0; i < specs.size(); ++i) {
        expect_results_equal(serial[i], batched[i],
                             "spec " + std::to_string(i) + " (" + specs[i].protocol +
                                 ") threads=" + std::to_string(threads) +
                                 " chunk=" + std::to_string(chunk));
      }
    }
  }
}

TEST(TrialWindow, ValidatesAndNamesTheOffendingField) {
  ScenarioSpec spec = ring_spec("basic-lead", 8, 10);
  spec.trial_offset = 11;
  try {
    run_scenario(spec);
    FAIL() << "expected std::invalid_argument for offset > trials";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("ScenarioSpec.trial_offset"),
              std::string::npos)
        << error.what();
  }
  spec.trial_offset = 4;
  spec.trial_count = 7;  // 4 + 7 > 10
  try {
    run_scenario(spec);
    FAIL() << "expected std::invalid_argument for offset + count > trials";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("ScenarioSpec.trial_count"), std::string::npos)
        << error.what();
  }
  // trial_count = 0 means "through the end".
  spec.trial_count = 0;
  const ScenarioResult tail = run_scenario(spec);
  EXPECT_EQ(tail.trials, 6u);
  EXPECT_EQ(tail.trial_offset, 4u);
  EXPECT_EQ(tail.spec_trials, 10u);
}

TEST(TrialWindow, WindowedRunMatchesTheSliceOfTheFullRun) {
  ScenarioSpec full = ring_spec("alead-uni", 12, 20);
  full.record_outcomes = true;
  const ScenarioResult whole = run_scenario(full);

  ScenarioSpec window = full;
  window.trial_offset = 7;
  window.trial_count = 5;
  const ScenarioResult slice = run_scenario(window);
  ASSERT_EQ(slice.per_trial.size(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(slice.per_trial[t], whole.per_trial[7 + t]) << "trial " << t;
  }
}

/// Shards a spec `shards` ways, merges the results, and asserts the merge
/// is bit-identical to the monolithic run.
void expect_sharded_merge_identical(const ScenarioSpec& spec, int shards) {
  const ScenarioResult whole = run_scenario(spec);
  std::vector<ScenarioResult> parts;
  for (int s = 0; s < shards; ++s) {
    ScenarioSpec shard = spec;
    const std::size_t lo = spec.trials * static_cast<std::size_t>(s) /
                           static_cast<std::size_t>(shards);
    const std::size_t hi = spec.trials * (static_cast<std::size_t>(s) + 1) /
                           static_cast<std::size_t>(shards);
    if (hi == lo) continue;
    shard.trial_offset = lo;
    shard.trial_count = hi - lo;
    parts.push_back(run_scenario(shard));
  }
  ASSERT_FALSE(parts.empty());
  ScenarioResult merged = parts.front();
  for (std::size_t s = 1; s < parts.size(); ++s) merged.merge(parts[s]);
  EXPECT_EQ(merged.trial_offset, 0u);
  EXPECT_EQ(merged.trials, spec.trials);
  expect_results_equal(whole, merged,
                       std::string(to_string(spec.topology)) + "/" + spec.protocol + " x" +
                           std::to_string(shards));
}

TEST(ScenarioShards, MergeBitIdenticalToMonolithicOnAllRuntimes) {
  std::vector<ScenarioSpec> specs;
  {  // ring, deviated, with per-trial outcomes and sync gaps
    ScenarioSpec spec = ring_spec("alead-uni", 16, 23);
    spec.deviation = "rushing";
    spec.coalition = CoalitionSpec::equally_spaced(4);
    spec.target = 15;
    spec.record_outcomes = true;
    specs.push_back(spec);
  }
  {  // graph
    ScenarioSpec spec;
    spec.topology = TopologyKind::kGraph;
    spec.protocol = "shamir-lead";
    spec.n = 8;
    spec.trials = 17;
    spec.seed = 3;
    specs.push_back(spec);
  }
  {  // sync
    ScenarioSpec spec;
    spec.topology = TopologyKind::kSync;
    spec.protocol = "sync-broadcast-lead";
    spec.n = 8;
    spec.trials = 19;
    spec.seed = 4;
    specs.push_back(spec);
  }
  {  // threaded
    ScenarioSpec spec = ring_spec("basic-lead", 8, 11, 6);
    spec.topology = TopologyKind::kThreaded;
    spec.record_outcomes = true;
    specs.push_back(spec);
  }
  for (const ScenarioSpec& spec : specs) {
    for (const int shards : {2, 3, 5}) {
      expect_sharded_merge_identical(spec, shards);
    }
  }
}

TEST(ScenarioShards, MergeRejectsIncompatibleShardsNamingTheField) {
  const ScenarioSpec base = ring_spec("basic-lead", 8, 12);
  ScenarioSpec head_spec = base;
  head_spec.trial_count = 6;
  ScenarioSpec tail_spec = base;
  tail_spec.trial_offset = 6;
  const ScenarioResult head = run_scenario(head_spec);
  const ScenarioResult tail = run_scenario(tail_spec);

  const auto expect_merge_error = [&](const ScenarioResult& other, const char* field) {
    ScenarioResult lhs = head;
    try {
      lhs.merge(other);
      FAIL() << "expected std::invalid_argument naming " << field;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(field), std::string::npos) << error.what();
    }
  };

  {  // different protocol
    ScenarioSpec other = head_spec;
    other.protocol = "alead-uni";
    expect_merge_error(run_scenario(other), "protocol_name");
  }
  {  // different outcome domain
    ScenarioSpec other = head_spec;
    other.n = 10;
    expect_merge_error(run_scenario(other), "outcomes domain");
  }
  {  // different base seed
    ScenarioSpec other = tail_spec;
    other.seed = base.seed + 1;
    expect_merge_error(run_scenario(other), "base_seed");
  }
  {  // non-contiguous (gap between shards)
    ScenarioSpec other = base;
    other.trial_offset = 7;
    expect_merge_error(run_scenario(other), "trial_offset");
  }
  {  // recorded-outcomes mismatch
    ScenarioSpec other = tail_spec;
    other.record_outcomes = true;
    expect_merge_error(run_scenario(other), "outcomes_recorded");
  }
  // And the happy path still works after all those rejections.
  ScenarioResult merged = head;
  merged.merge(tail);
  EXPECT_EQ(merged.trials, 12u);
}

TEST(SweepGrid, ExpandsRowMajorOverNonEmptyAxes) {
  SweepGrid grid;
  grid.base = ring_spec("basic-lead", 8, 5);
  grid.base.coalition = CoalitionSpec::consecutive(1, 3);
  grid.base.deviation = "basic-single";
  grid.protocols = {"basic-lead", "alead-uni"};
  grid.n_values = {8, 16, 32};
  grid.seeds = {1, 2};
  const std::vector<ScenarioSpec> specs = grid.expand();
  ASSERT_EQ(specs.size(), 2u * 3u * 2u);
  // Row-major: protocol is the slowest axis, seed the fastest.
  EXPECT_EQ(specs[0].protocol, "basic-lead");
  EXPECT_EQ(specs[0].n, 8);
  EXPECT_EQ(specs[0].seed, 1u);
  EXPECT_EQ(specs[1].seed, 2u);
  EXPECT_EQ(specs[2].n, 16);
  EXPECT_EQ(specs[6].protocol, "alead-uni");
  // Empty axes keep the base's values.
  for (const ScenarioSpec& spec : specs) {
    EXPECT_EQ(spec.deviation, "basic-single");
    EXPECT_EQ(spec.coalition.k, 1);
    EXPECT_EQ(spec.trials, 5u);
  }
}

TEST(RunSweep, InvalidScenarioNamesItsIndex) {
  SweepSpec sweep;
  sweep.add(ring_spec("basic-lead", 8, 4));
  sweep.add(ring_spec("no-such-protocol", 8, 4));
  try {
    run_sweep(sweep);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("SweepSpec.scenarios[1]"), std::string::npos) << message;
    EXPECT_NE(message.find("no-such-protocol"), std::string::npos) << message;
  }
}

TEST(ShardRows, FormatParseRoundTripsAndMergesToMonolithic) {
  ScenarioSpec spec = ring_spec("alead-uni", 12, 21);
  spec.record_outcomes = true;
  const ScenarioResult whole = run_scenario(spec);

  std::vector<verify::ShardRow> rows;
  for (int s = 0; s < 3; ++s) {
    ScenarioSpec shard = spec;
    shard.trial_offset = static_cast<std::size_t>(s) * 7;
    shard.trial_count = 7;
    verify::ShardRow row;
    row.case_index = 4;
    row.label = "honest";
    row.spec_line = "topology=ring protocol=alead-uni n=12 trials=21 seed=11";
    row.allocations = 10 + static_cast<std::uint64_t>(s);
    row.result = run_scenario(shard);
    // Round-trip through the JSONL rendering before merging.
    rows.push_back(verify::parse_shard_row(verify::format_shard_row(row)));
    EXPECT_EQ(rows.back().label, "honest");
    EXPECT_EQ(rows.back().allocations, row.allocations);
    expect_results_equal(row.result, rows.back().result, "round-trip shard " +
                                                             std::to_string(s));
  }
  // Shuffle the merge order: merge_shard_rows sorts by trial_offset.
  std::swap(rows[0], rows[2]);
  const auto merged = verify::merge_shard_rows(rows);
  ASSERT_EQ(merged.size(), 1u);
  ASSERT_TRUE(merged.count(4));
  expect_results_equal(whole, merged.at(4).result, "merged rows");
  EXPECT_EQ(merged.at(4).allocations, 10u + 11u + 12u);
}

TEST(ShardRows, PassthroughRowsRoundTripAndMergeVerbatim) {
  verify::ShardRow row;
  row.case_index = 2;
  row.passthrough = R"({"label": "hand-built", "value": 3})";
  const verify::ShardRow parsed =
      verify::parse_shard_row(verify::format_shard_row(row));
  EXPECT_EQ(parsed.case_index, 2u);
  EXPECT_EQ(parsed.passthrough, row.passthrough);
  const auto merged = verify::merge_shard_rows({parsed});
  ASSERT_TRUE(merged.count(2));
  EXPECT_EQ(merged.at(2).passthrough, row.passthrough);
}

TEST(ShardRows, ParseRejectsCorruptCountsWithoutReplaying) {
  // A forged count far beyond the row's trials must fail the parse (fast)
  // rather than spinning the histogram replay.
  const std::string line =
      R"({"case": 0, "spec": "topology=ring protocol=basic-lead n=2 trials=4 seed=1", )"
      R"("n": 2, "trials": 4, "trial_offset": 0, "spec_trials": 4, "base_seed": 1, )"
      R"("fails": 0, "counts": "18446744073709551615,0", "total_messages": 0, )"
      R"("max_messages": 0, "total_sync_gap": 0, "max_sync_gap": 0, "max_rounds": 0, )"
      R"("wall_seconds": 0, "protocol_name": "x", "deviation_name": "", "recorded": false})";
  EXPECT_THROW(verify::parse_shard_row(line), std::invalid_argument);
}

TEST(ScenarioShards, MergeRejectsOverlappingAndGapWindows) {
  const ScenarioSpec base = ring_spec("basic-lead", 8, 12);
  ScenarioSpec head_spec = base;
  head_spec.trial_count = 6;
  const ScenarioResult head = run_scenario(head_spec);

  const auto expect_merge_error = [&](const ScenarioSpec& other_spec) {
    ScenarioResult lhs = head;
    try {
      lhs.merge(run_scenario(other_spec));
      FAIL() << "expected std::invalid_argument for a non-contiguous window";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("trial_offset"), std::string::npos)
          << error.what();
    }
  };
  {  // overlap: the next shard re-runs trials [3, 9) over head's [0, 6)
    ScenarioSpec other = base;
    other.trial_offset = 3;
    other.trial_count = 6;
    expect_merge_error(other);
  }
  {  // duplicate: the same window fed twice
    expect_merge_error(head_spec);
  }
  {  // gap: [8, 12) leaves [6, 8) uncovered
    ScenarioSpec other = base;
    other.trial_offset = 8;
    expect_merge_error(other);
  }
}

TEST(ScenarioShards, MergeRejectsTranscriptFlagMismatch) {
  ScenarioSpec head_spec = ring_spec("basic-lead", 6, 8);
  head_spec.trial_count = 4;
  head_spec.record_transcripts = true;
  ScenarioSpec tail_spec = ring_spec("basic-lead", 6, 8);
  tail_spec.trial_offset = 4;  // transcripts NOT recorded on this shard
  ScenarioResult lhs = run_scenario(head_spec);
  try {
    lhs.merge(run_scenario(tail_spec));
    FAIL() << "expected std::invalid_argument naming transcripts_recorded";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("transcripts_recorded"), std::string::npos)
        << error.what();
  }
}

TEST(ShardRows, TranscriptMergeRejectsMissingShard) {
  // A transcript-recording scenario sharded in two, with the tail shard
  // lost: the merge must fail (naming the missing file) instead of
  // returning a silently truncated capture.
  ScenarioSpec spec = ring_spec("basic-lead", 6, 8);
  spec.record_outcomes = true;
  spec.record_transcripts = true;
  spec.trial_count = 4;
  verify::ShardRow row;
  row.case_index = 0;
  row.spec_line =
      "topology=ring protocol=basic-lead n=6 trials=8 seed=11 record=1 transcripts=1";
  row.result = run_scenario(spec);
  ASSERT_EQ(row.result.per_trial_transcript.size(), 4u);
  // The row survives its own round-trip (transcript hex included) ...
  const verify::ShardRow parsed = verify::parse_shard_row(verify::format_shard_row(row));
  ASSERT_EQ(parsed.result.per_trial_transcript.size(), 4u);
  // ... but merging without the other shard is an error, not a truncation.
  try {
    verify::merge_shard_rows({parsed});
    FAIL() << "expected std::invalid_argument for missing coverage";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("shard file is missing"), std::string::npos)
        << error.what();
  }
}

TEST(ShardRows, MergeRejectsMissingShard) {
  ScenarioSpec spec = ring_spec("basic-lead", 8, 12);
  spec.trial_count = 6;  // first half only
  verify::ShardRow row;
  row.case_index = 0;
  row.spec_line = "topology=ring protocol=basic-lead n=8 trials=12 seed=11";
  row.result = run_scenario(spec);
  try {
    verify::merge_shard_rows({row});
    FAIL() << "expected std::invalid_argument for missing coverage";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("shard file is missing"), std::string::npos)
        << error.what();
  }
}

}  // namespace
}  // namespace fle
