// General-topology asynchronous engine: link FIFO order, adjacency
// enforcement, quiescence, scheduler variants.

#include <gtest/gtest.h>

#include "sim/graph_engine.h"

namespace fle {
namespace {

/// Sends `count` numbered messages to a fixed destination at wake-up.
class GraphBurst final : public GraphStrategy {
 public:
  GraphBurst(ProcessorId to, int count) : to_(to), count_(count) {}
  void on_init(GraphContext& ctx) override {
    for (int i = 0; i < count_; ++i) ctx.send(to_, {static_cast<Value>(i)});
  }
  void on_receive(GraphContext& ctx, ProcessorId, const GraphMessage&) override {
    ctx.terminate(0);
  }

 private:
  ProcessorId to_;
  int count_;
};

/// Records (from, first value) pairs; terminates after `expect` receives.
class GraphRecorder final : public GraphStrategy {
 public:
  GraphRecorder(std::vector<std::pair<ProcessorId, Value>>* sink, int expect)
      : sink_(sink), expect_(expect) {}
  void on_receive(GraphContext& ctx, ProcessorId from, const GraphMessage& m) override {
    sink_->push_back({from, m.empty() ? ~0ull : m[0]});
    if (static_cast<int>(sink_->size()) >= expect_) {
      for (ProcessorId p = 0; p < ctx.network_size(); ++p) {
        if (p != ctx.id()) ctx.send(p, {0});
      }
      ctx.terminate(0);
    }
  }

 private:
  std::vector<std::pair<ProcessorId, Value>>* sink_;
  int expect_;
};

TEST(GraphEngine, PerLinkFifoOrder) {
  std::vector<std::pair<ProcessorId, Value>> received;
  GraphEngine engine(3, 1);
  std::vector<std::unique_ptr<GraphStrategy>> s;
  s.push_back(std::make_unique<GraphBurst>(2, 4));
  s.push_back(std::make_unique<GraphBurst>(2, 4));
  s.push_back(std::make_unique<GraphRecorder>(&received, 8));
  const Outcome o = engine.run(std::move(s));
  EXPECT_TRUE(o.valid());
  // Per-sender subsequences must be 0,1,2,3 in order.
  for (ProcessorId sender : {0, 1}) {
    Value expect = 0;
    for (const auto& [from, v] : received) {
      if (from != sender) continue;
      EXPECT_EQ(v, expect);
      ++expect;
    }
    EXPECT_EQ(expect, 4u);
  }
}

TEST(GraphEngine, AdjacencyRestrictionEnforced) {
  GraphEngineOptions options;
  options.adjacency.assign(3, std::vector<char>(3, 0));
  options.adjacency[0][1] = 1;  // only 0 -> 1 allowed
  GraphEngine engine(3, 1, std::move(options));
  class SendToForbidden final : public GraphStrategy {
   public:
    void on_init(GraphContext& ctx) override { ctx.send(2, {1}); }
    void on_receive(GraphContext&, ProcessorId, const GraphMessage&) override {}
  };
  std::vector<std::unique_ptr<GraphStrategy>> s;
  s.push_back(std::make_unique<SendToForbidden>());
  s.push_back(std::make_unique<SendToForbidden>());
  s.push_back(std::make_unique<SendToForbidden>());
  EXPECT_THROW(engine.run(std::move(s)), std::invalid_argument);
}

TEST(GraphEngine, SelfSendRejected) {
  GraphEngine engine(2, 1);
  class SelfSend final : public GraphStrategy {
   public:
    void on_init(GraphContext& ctx) override { ctx.send(ctx.id(), {1}); }
    void on_receive(GraphContext&, ProcessorId, const GraphMessage&) override {}
  };
  std::vector<std::unique_ptr<GraphStrategy>> s;
  s.push_back(std::make_unique<SelfSend>());
  s.push_back(std::make_unique<SelfSend>());
  EXPECT_THROW(engine.run(std::move(s)), std::invalid_argument);
}

TEST(GraphEngine, QuiescenceWithoutTerminationFails) {
  class Silent final : public GraphStrategy {
   public:
    void on_receive(GraphContext&, ProcessorId, const GraphMessage&) override {}
  };
  GraphEngine engine(3, 1);
  std::vector<std::unique_ptr<GraphStrategy>> s;
  for (int i = 0; i < 3; ++i) s.push_back(std::make_unique<Silent>());
  const Outcome o = engine.run(std::move(s));
  EXPECT_TRUE(o.failed());
  EXPECT_EQ(engine.stats().deliveries, 0u);
}

TEST(GraphEngine, StepLimitStopsPingPong) {
  class PingPong final : public GraphStrategy {
   public:
    void on_init(GraphContext& ctx) override {
      if (ctx.id() == 0) ctx.send(1, {0});
    }
    void on_receive(GraphContext& ctx, ProcessorId from, const GraphMessage& m) override {
      ctx.send(from, m);
    }
  };
  GraphEngineOptions options;
  options.step_limit = 64;
  GraphEngine engine(2, 1, std::move(options));
  std::vector<std::unique_ptr<GraphStrategy>> s;
  s.push_back(std::make_unique<PingPong>());
  s.push_back(std::make_unique<PingPong>());
  EXPECT_TRUE(engine.run(std::move(s)).failed());
  EXPECT_TRUE(engine.stats().step_limit_hit);
}

TEST(GraphEngine, MessagesToTerminatedVanish) {
  class StopImmediately final : public GraphStrategy {
   public:
    void on_init(GraphContext& ctx) override { ctx.terminate(0); }
    void on_receive(GraphContext&, ProcessorId, const GraphMessage&) override {}
  };
  class Sender final : public GraphStrategy {
   public:
    void on_init(GraphContext& ctx) override {
      ctx.send(1, {7});
      ctx.terminate(0);
    }
    void on_receive(GraphContext&, ProcessorId, const GraphMessage&) override {}
  };
  GraphEngine engine(2, 1);
  std::vector<std::unique_ptr<GraphStrategy>> s;
  s.push_back(std::make_unique<Sender>());
  s.push_back(std::make_unique<StopImmediately>());
  const Outcome o = engine.run(std::move(s));
  EXPECT_TRUE(o.valid());
  EXPECT_EQ(engine.stats().received[1], 0u);
}

TEST(GraphEngine, CountsSentAndReceived) {
  std::vector<std::pair<ProcessorId, Value>> received;
  GraphEngine engine(2, 1);
  std::vector<std::unique_ptr<GraphStrategy>> s;
  s.push_back(std::make_unique<GraphBurst>(1, 5));
  s.push_back(std::make_unique<GraphRecorder>(&received, 5));
  ASSERT_TRUE(engine.run(std::move(s)).valid());
  EXPECT_EQ(engine.stats().sent[0], 5u);
  EXPECT_EQ(engine.stats().received[1], 5u);
}

}  // namespace
}  // namespace fle
