// Attacks on A-LEADuni: Lemma 4.1 rushing, Theorem 4.3 cubic, Theorem C.1
// random-location, and the resilience-side boundaries.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/experiment.h"
#include "attacks/coalition.h"
#include "attacks/cubic.h"
#include "attacks/random_location.h"
#include "attacks/rushing.h"
#include "protocols/alead_uni.h"

namespace fle {
namespace {

struct RushCase {
  int n;
  int k;
};

class RushingAttack : public ::testing::TestWithParam<RushCase> {};

TEST_P(RushingAttack, ControlsOutcomeAtSqrtN) {
  const auto [n, k] = GetParam();
  ALeadUniProtocol protocol;
  const auto coalition = Coalition::equally_spaced(n, k);
  ASSERT_TRUE(coalition.rushing_precondition_holds()) << coalition.render();
  for (Value w : {Value{0}, Value{1}, static_cast<Value>(n / 2), static_cast<Value>(n - 1)}) {
    RushingDeviation deviation(coalition, w);
    ExperimentConfig config;
    config.n = n;
    config.trials = 6;
    config.seed = 17 * n + w;
    const auto result = run_trials(protocol, &deviation, config);
    EXPECT_EQ(result.outcomes.count(w), result.outcomes.trials())
        << "n=" << n << " k=" << k << " w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RushingAttack,
                         ::testing::Values(RushCase{16, 4}, RushCase{25, 5}, RushCase{36, 6},
                                           RushCase{100, 10}, RushCase{121, 11},
                                           RushCase{150, 13}));

TEST(RushingAttack, PreconditionBoundaryMatchesTheorem42) {
  // k = ceil(sqrt(n)) satisfies l_j <= k-1 for equal spacing; k-1 does not
  // (Theorem 4.2's boundary up to rounding).
  for (int n : {36, 100, 144, 400}) {
    int k = 1;
    while (k * k < n) ++k;  // k = ceil(sqrt(n))
    EXPECT_TRUE(Coalition::equally_spaced(n, k).rushing_precondition_holds()) << n;
    EXPECT_FALSE(Coalition::equally_spaced(n, k - 2).rushing_precondition_holds()) << n;
  }
}

TEST(RushingAttack, RejectsInvalidPlacements) {
  const int n = 36;
  // Consecutive coalition: one giant segment; Lemma 4.1 does not apply.
  EXPECT_THROW(RushingDeviation(Coalition::consecutive(n, 6, 2), 0), std::invalid_argument);
  // Coalition containing the origin is not supported by the attack.
  EXPECT_THROW(RushingDeviation(Coalition::equally_spaced(n, 6, /*first=*/0), 0),
               std::invalid_argument);
}

TEST(RushingAttack, SyncGapShowsRushingSignature) {
  // The rushing coalition runs ahead of the honest buffer cadence; the gap
  // grows beyond A-LEADuni's honest bound of 1.
  const int n = 100;
  const int k = 10;
  ALeadUniProtocol protocol;
  RushingDeviation deviation(Coalition::equally_spaced(n, k), 3);
  ExperimentConfig config;
  config.n = n;
  config.trials = 3;
  const auto result = run_trials(protocol, &deviation, config);
  EXPECT_GT(result.max_sync_gap, 1u);
}

class CubicAttack : public ::testing::TestWithParam<int> {};

TEST_P(CubicAttack, ControlsOutcomeAtTwoCubeRoot) {
  const int n = GetParam();
  const int k = Coalition::cubic_min_k(n);
  ALeadUniProtocol protocol;
  const auto coalition = Coalition::cubic_staircase(n, k);
  ASSERT_EQ(coalition.k(), k);
  for (Value w : {Value{0}, static_cast<Value>(n - 1)}) {
    CubicDeviation deviation(coalition, w);
    ExperimentConfig config;
    config.n = n;
    config.trials = 5;
    config.seed = 31 * n + w;
    const auto result = run_trials(protocol, &deviation, config);
    EXPECT_EQ(result.outcomes.count(w), result.outcomes.trials()) << "n=" << n << " w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CubicAttack, ::testing::Values(20, 50, 100, 250, 500, 1000));

TEST(CubicAttack, MinKGrowsLikeCubeRoot) {
  // (k-1)k(k+1)/2 >= n-k  =>  k ~ (2n)^(1/3); the paper states k >= 2 n^(1/3)
  // suffices (with slack).
  for (int n : {100, 1000, 8000, 64000}) {
    const int k = Coalition::cubic_min_k(n);
    const double bound = 2.0 * std::pow(static_cast<double>(n), 1.0 / 3.0);
    EXPECT_LE(k, static_cast<int>(bound) + 2) << n;
    EXPECT_GE(k, static_cast<int>(0.5 * bound) - 2) << n;
  }
}

TEST(CubicAttack, TerminatesForAllStaircaseSizes) {
  // Lemma 4.4: the zero-burst chain keeps every adversary fed.  Termination
  // == outcome is valid (not FAIL), since FAIL would indicate starvation.
  ALeadUniProtocol protocol;
  for (int n = 20; n <= 200; n += 17) {
    const int k = Coalition::cubic_min_k(n);
    CubicDeviation deviation(Coalition::cubic_staircase(n, k), 1);
    ExperimentConfig config;
    config.n = n;
    config.trials = 2;
    const auto result = run_trials(protocol, &deviation, config);
    EXPECT_EQ(result.outcomes.count(1), result.outcomes.trials()) << "n=" << n;
  }
}

TEST(CubicAttack, LargerKAlsoWorks) {
  // Using more adversaries than the minimum keeps the staircase valid.
  const int n = 200;
  const int k = Coalition::cubic_min_k(n) + 3;
  CubicDeviation deviation(Coalition::cubic_staircase(n, k), 7);
  ALeadUniProtocol protocol;
  ExperimentConfig config;
  config.n = n;
  config.trials = 3;
  const auto result = run_trials(protocol, &deviation, config);
  EXPECT_EQ(result.outcomes.count(7), result.outcomes.trials());
}

TEST(RandomLocationAttack, SucceedsWithRecommendedDensity) {
  // Theorem C.1: with p = sqrt(8 ln n / n), the attack succeeds with high
  // probability over placements and secrets.
  const int n = 150;
  const int c_prefix = 4;
  ALeadUniProtocol protocol;
  const double p = RandomLocationDeviation::recommended_density(n);
  int successes = 0;
  int attempts = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const auto coalition = Coalition::bernoulli(n, p, seed);
    if (coalition.k() < c_prefix + 2) continue;  // degenerate draw
    RandomLocationDeviation deviation(coalition, 9, c_prefix, protocol);
    ExperimentConfig config;
    config.n = n;
    config.trials = 1;
    config.seed = seed * 7919;
    const auto result = run_trials(protocol, &deviation, config);
    ++attempts;
    if (result.outcomes.count(9) == 1) ++successes;
  }
  ASSERT_GT(attempts, 20);
  // The theorem's failure terms are tiny at these parameters; allow slack
  // for unlucky placements (some segment longer than k-C-1).
  EXPECT_GE(static_cast<double>(successes) / attempts, 0.85)
      << successes << "/" << attempts;
}

TEST(RandomLocationAttack, AdversariesEstimateKCorrectlyViaCircularity) {
  // White-box check through outcomes: with an equally-spaced coalition
  // (disjoint from the origin), detection yields k' = k and the attack is
  // exact every time.
  const int n = 80;
  const int k = 12;
  ALeadUniProtocol protocol;
  const auto coalition = Coalition::equally_spaced(n, k);
  RandomLocationDeviation deviation(coalition, 5, /*prefix=*/4, protocol);
  ExperimentConfig config;
  config.n = n;
  config.trials = 10;
  const auto result = run_trials(protocol, &deviation, config);
  EXPECT_EQ(result.outcomes.count(5), result.outcomes.trials());
}

TEST(RandomLocationAttack, HonestOriginMemberPlaysHonestly) {
  // Placements that include processor 0 must not break the execution: the
  // origin plays honestly per the theorem.  Density must be high enough
  // that the *effective* coalition still covers every segment
  // (l_j <= k_eff - C - 1).
  const int n = 60;
  ALeadUniProtocol protocol;
  std::vector<ProcessorId> members;
  for (int p = 0; p < n; p += 4) members.push_back(p);  // includes the origin
  const Coalition coalition(n, std::move(members));
  RandomLocationDeviation deviation(coalition, 2, 4, protocol);
  ExperimentConfig config;
  config.n = n;
  config.trials = 5;
  const auto result = run_trials(protocol, &deviation, config);
  // Effective coalition: 14 spaced adversaries (origin honest); the segment
  // that swallowed the origin has l = 7 <= k_eff - C - 1 = 9.
  EXPECT_EQ(result.outcomes.count(2), result.outcomes.trials());
}

TEST(ALeadResilienceSide, SmallCoalitionAttacksFailOrStayUnbiased) {
  // Theorem 5.1's regime: k <= n^(1/4)/4 is far below every attack's
  // requirement; instantiating the attacks there must not give the coalition
  // control (preconditions fail or executions FAIL).
  const int n = 256;  // n^(1/4)/4 = 1 => only trivial coalitions qualify
  EXPECT_FALSE(Coalition::equally_spaced(n, 4).rushing_precondition_holds());
  EXPECT_THROW(Coalition::cubic_staircase(n, 4), std::invalid_argument);
}

}  // namespace
}  // namespace fle
