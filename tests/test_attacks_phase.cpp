// Attacks on PhaseAsyncLead: the rushing/steering attack of the remark after
// Theorem 6.1, and the resilience regime of Theorem 6.1 itself.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/experiment.h"
#include "attacks/coalition.h"
#include "attacks/phase_late_validation.h"
#include "attacks/phase_rushing.h"
#include "protocols/phase_async_lead.h"

namespace fle {
namespace {

int sqrt_plus3_k(int n) {
  return static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))) + 3;
}

TEST(PhaseRushing, SteeringPossibleExactlyAboveSqrtN) {
  // Free slots = k - l_j; equal spacing gives l_j ~ n/k - 1, so steering
  // needs k(k+1) >~ n: the sqrt(n) crossover of Section 6.
  const int n = 400;
  PhaseAsyncLeadProtocol protocol(n, 1);
  {
    const int k = sqrt_plus3_k(n);  // 23
    PhaseRushingDeviation dev(Coalition::equally_spaced(n, k), 0, protocol);
    EXPECT_TRUE(dev.steering_possible());
  }
  {
    const int k = 10;  // sqrt(n)/2: resilient regime
    PhaseRushingDeviation dev(Coalition::equally_spaced(n, k), 0, protocol);
    EXPECT_FALSE(dev.steering_possible());
  }
}

class PhaseRushingAttack : public ::testing::TestWithParam<int> {};

TEST_P(PhaseRushingAttack, ControlsOutcomeAtSqrtNPlus3) {
  const int n = GetParam();
  const int k = sqrt_plus3_k(n);
  PhaseAsyncLeadProtocol protocol(n, 0x5a5aull + n);
  const auto coalition = Coalition::equally_spaced(n, k);
  PhaseRushingDeviation deviation(coalition, static_cast<Value>(n / 3), protocol,
                                  /*search_cap=*/64ull * n);
  ASSERT_TRUE(deviation.steering_possible()) << coalition.render();
  ExperimentConfig config;
  config.n = n;
  config.trials = 12;
  config.seed = 1009 * n;
  const auto result = run_trials(protocol, &deviation, config);
  // Each adversary independently needs a preimage hit; with >= 2 free slots
  // and a generous cap the attack succeeds in virtually every trial.
  EXPECT_GE(result.outcomes.count(static_cast<Value>(n / 3)), result.outcomes.trials() - 1)
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PhaseRushingAttack, ::testing::Values(64, 100, 196, 256));

TEST(PhaseRushingAttack, EveryTargetReachable) {
  const int n = 100;
  const int k = sqrt_plus3_k(n);
  PhaseAsyncLeadProtocol protocol(n, 7);
  const auto coalition = Coalition::equally_spaced(n, k);
  for (Value w : {Value{0}, Value{13}, Value{99}}) {
    PhaseRushingDeviation deviation(coalition, w, protocol, 64ull * n);
    ExperimentConfig config;
    config.n = n;
    config.trials = 6;
    config.seed = w + 5;
    const auto result = run_trials(protocol, &deviation, config);
    EXPECT_GE(result.outcomes.count(w), result.outcomes.trials() - 1) << "w=" << w;
  }
}

TEST(PhaseRushingAttack, ResilientRegimeGivesNoControl) {
  // Theorem 6.1's regime (k <= sqrt(n)/10 would be 2 at n=400; use a
  // slightly larger-but-still-subcritical coalition): the same deviation
  // cannot steer and the executions FAIL or elect essentially uniformly —
  // the coalition gains nothing (solution preference makes FAIL worthless).
  const int n = 256;
  const int k = 8;  // l_j = 31 >> k: zero free slots
  PhaseAsyncLeadProtocol protocol(n, 3);
  const Value w = 77;
  PhaseRushingDeviation deviation(Coalition::equally_spaced(n, k), w, protocol);
  ASSERT_FALSE(deviation.steering_possible());
  ExperimentConfig config;
  config.n = n;
  config.trials = 30;
  const auto result = run_trials(protocol, &deviation, config);
  // Target hit rate must be near 1/n, not near 1 (w.h.p. the mismatched
  // segment outputs simply FAIL).
  EXPECT_LE(result.outcomes.count(w), 3u);
  EXPECT_GE(result.outcomes.fails(), result.outcomes.trials() / 2);
}

TEST(PhaseRushingAttack, CrossoverSweepMatchesSqrtN) {
  // Sweep k: success should jump from ~0 to ~1 as k crosses sqrt(n)-ish.
  const int n = 144;
  PhaseAsyncLeadProtocol protocol(n, 21);
  const Value w = 5;
  double low_k_rate = 0.0;
  double high_k_rate = 0.0;
  {
    PhaseRushingDeviation dev(Coalition::equally_spaced(n, 6), w, protocol);
    ExperimentConfig config;
    config.n = n;
    config.trials = 10;
    const auto r = run_trials(protocol, &dev, config);
    low_k_rate = static_cast<double>(r.outcomes.count(w)) / r.outcomes.trials();
  }
  {
    PhaseRushingDeviation dev(Coalition::equally_spaced(n, sqrt_plus3_k(n)), w, protocol,
                              64ull * n);
    ExperimentConfig config;
    config.n = n;
    config.trials = 10;
    const auto r = run_trials(protocol, &dev, config);
    high_k_rate = static_cast<double>(r.outcomes.count(w)) / r.outcomes.trials();
  }
  EXPECT_LT(low_k_rate, 0.2);
  EXPECT_GT(high_k_rate, 0.8);
}

TEST(PhaseRushing, RejectsOriginMember) {
  const int n = 64;
  PhaseAsyncLeadProtocol protocol(n, 1);
  EXPECT_THROW(
      PhaseRushingDeviation(Coalition::equally_spaced(n, 11, /*first=*/0), 0, protocol),
      std::invalid_argument);
}

TEST(PhaseRushing, CubicStyleCoalitionDoesNotBeatPhaseAsyncLead) {
  // The coalition scale that breaks A-LEADuni (k ~ 2 n^(1/3)) is far below
  // PhaseAsyncLead's sqrt(n) threshold: steering is impossible there.
  const int n = 729;  // 2*9=18 adversaries < sqrt(729)=27
  const int k = Coalition::cubic_min_k(n);
  ASSERT_LT(k, 27);
  PhaseAsyncLeadProtocol protocol(n, 2);
  PhaseRushingDeviation deviation(Coalition::equally_spaced(n, k), 1, protocol);
  EXPECT_FALSE(deviation.steering_possible());
}


TEST(PhaseLateValidation, SmallLFallsToConstantCoalition) {
  // Design ablation: with l = 4, a coalition of exactly l = 4 consecutive
  // processors steers f through the round-(n-l) validation value.
  const int n = 128;
  PhaseParams params = PhaseParams::defaults(n);
  params.l = 4;
  PhaseAsyncLeadProtocol protocol(params, 0x1a7eull);
  const Value w = 100;
  PhaseLateValidationDeviation deviation(protocol, w);
  EXPECT_EQ(deviation.coalition().k(), 4);
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.trials = 12;
  cfg.seed = 5;
  const auto r = run_trials(protocol, &deviation, cfg);
  EXPECT_EQ(r.outcomes.count(w), r.outcomes.trials());
  EXPECT_EQ(r.outcomes.fails(), 0u);  // fully honest-looking: never detected
}

TEST(PhaseLateValidation, EveryTargetReachable) {
  const int n = 64;
  PhaseParams params = PhaseParams::defaults(n);
  params.l = 6;
  PhaseAsyncLeadProtocol protocol(params, 0x99ull);
  for (const Value w : {Value{0}, Value{31}, Value{63}}) {
    PhaseLateValidationDeviation deviation(protocol, w);
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.trials = 6;
    cfg.seed = w + 1;
    const auto r = run_trials(protocol, &deviation, cfg);
    EXPECT_EQ(r.outcomes.count(w), r.outcomes.trials()) << "w=" << w;
  }
}

TEST(PhaseLateValidation, DefaultLMakesTheAttackExpensive) {
  // With the paper's l = ceil(10 sqrt(n)) the same channel needs k = l
  // ~ 10 sqrt(n) members — strictly worse than the rushing attack, which is
  // exactly why the paper picks l there.
  const int n = 400;
  PhaseAsyncLeadProtocol protocol(n, 0x1ull);
  EXPECT_EQ(PhaseLateValidationDeviation::required_k(protocol), 200);
  PhaseLateValidationDeviation deviation(protocol, 7);
  EXPECT_EQ(deviation.coalition().k(), 200);
}

TEST(PhaseLateValidation, ConsecutivePlacementStillWins) {
  // Unlike the rushing attacks (which need spread-out coalitions), this
  // channel uses a *consecutive* coalition — placement structure matters
  // per-attack, not universally (contrast Claim D.1).
  const int n = 100;
  PhaseParams params = PhaseParams::defaults(n);
  params.l = 5;
  PhaseAsyncLeadProtocol protocol(params, 0x7ull);
  PhaseLateValidationDeviation deviation(protocol, 9);
  const auto& members = deviation.coalition().members();
  for (std::size_t i = 1; i < members.size(); ++i) {
    EXPECT_EQ(members[i], members[i - 1] + 1);  // consecutive block
  }
  ExperimentConfig cfg;
  cfg.n = n;
  cfg.trials = 8;
  const auto r = run_trials(protocol, &deviation, cfg);
  EXPECT_EQ(r.outcomes.count(9), r.outcomes.trials());
}

}  // namespace
}  // namespace fle
