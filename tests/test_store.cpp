// The content-addressed transcript store (src/store/): SHA-256 against the
// FIPS 180-4 vectors, leaf/inner hash preimage goldens, on-disk round-trips
// and malformed-image rejection, blob dedup counting, and the O(diff) sync
// contract — identical stores prove equality with zero tree reads, a
// single tampered trial is localized in depth+1 reads per store.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/digest.h"
#include "sim/transcript.h"
#include "store/store.h"

namespace fle {
namespace {

// ---- SHA-256 ----------------------------------------------------------------

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(Sha256::of_string("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::of_string("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      Sha256::of_string("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, StreamedUpdatesMatchOneShot) {
  // One million 'a', fed in uneven chunks that straddle block boundaries.
  Sha256 hasher;
  const std::string chunk(997, 'a');
  std::size_t fed = 0;
  while (fed < 1000000) {
    const std::size_t take = std::min<std::size_t>(chunk.size(), 1000000 - fed);
    hasher.update(chunk.data(), take);
    fed += take;
  }
  EXPECT_EQ(hasher.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Digest256, HexRoundTripsEitherCase) {
  const Digest256 digest = Sha256::of_string("abc");
  const auto lower = Digest256::from_hex(digest.hex());
  std::string upper_hex = digest.hex();
  for (char& c : upper_hex) c = static_cast<char>(std::toupper(c));
  const auto upper = Digest256::from_hex(upper_hex);
  ASSERT_TRUE(lower.has_value());
  ASSERT_TRUE(upper.has_value());
  EXPECT_EQ(*lower, digest);
  EXPECT_EQ(*upper, digest);
  EXPECT_FALSE(Digest256::from_hex("zz").has_value());
  EXPECT_FALSE(Digest256::from_hex(digest.hex().substr(1)).has_value());
}

// ---- tree shape and hash preimages ------------------------------------------

TEST(Store, DepthIsTheSmallestCoveringPower) {
  EXPECT_EQ(store_depth(1), 1);
  EXPECT_EQ(store_depth(16), 1);
  EXPECT_EQ(store_depth(17), 2);
  EXPECT_EQ(store_depth(256), 2);
  EXPECT_EQ(store_depth(257), 3);
}

/// One transcript with a recognizable event stream; distinct per `tag`.
ExecutionTranscript make_transcript(std::uint64_t tag) {
  ExecutionTranscript transcript;
  transcript.delivery(1, tag % 8, tag * 3 + 1);
  transcript.turn(2, tag % 5, tag);
  transcript.decision(tag % 4, false, tag % 7);
  return transcript;
}

std::vector<ExecutionTranscript> make_transcripts(std::size_t count, std::uint64_t salt = 0) {
  std::vector<ExecutionTranscript> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(make_transcript(salt + i));
  return out;
}

TEST(Store, LeafAndRootHashesMatchThePreimageSpec) {
  const std::vector<ExecutionTranscript> transcripts = make_transcripts(1);
  StoreWriter writer;
  writer.add_scenario("spec-line", transcripts);
  const StoreReader reader = StoreReader::from_bytes(writer.finish());
  ASSERT_EQ(reader.depth(), 1);

  // Leaf hash: SHA-256 of the encoded blob, nothing else.
  const Digest256 leaf = Sha256::of(transcripts[0].encode());
  EXPECT_EQ(leaf, transcripts[0].content_key());

  // Root (inner, level 1) hash: 'I', level byte, then 16 child slots of 32
  // bytes each — present children their hash, absent children zeros.
  // Offsets are location metadata and stay OUT of the preimage.
  std::vector<std::uint8_t> preimage{'I', 1};
  preimage.insert(preimage.end(), leaf.bytes.begin(), leaf.bytes.end());
  preimage.resize(2 + 16 * 32, 0);
  EXPECT_EQ(reader.root_hash(), Sha256::of(preimage));
}

// ---- round trips and rejection ----------------------------------------------

TEST(Store, RoundTripsTranscriptsScenariosAndCounters) {
  const std::vector<ExecutionTranscript> first = make_transcripts(20, 0);
  const std::vector<ExecutionTranscript> second = make_transcripts(7, 100);
  StoreWriter writer;
  writer.add_scenario("scenario-a", first);
  writer.add_scenario("scenario-b", second);
  const StoreReader reader = StoreReader::from_bytes(writer.finish());

  EXPECT_EQ(reader.trial_count(), 27u);
  EXPECT_EQ(reader.depth(), 2);
  ASSERT_EQ(reader.scenarios().size(), 2u);
  EXPECT_EQ(reader.scenarios()[0], (StoreScenario{"scenario-a", 0, 20}));
  EXPECT_EQ(reader.scenarios()[1], (StoreScenario{"scenario-b", 20, 7}));
  for (std::size_t t = 0; t < 20; ++t) {
    EXPECT_EQ(reader.read_transcript(t), first[t]) << "trial " << t;
  }
  for (std::size_t t = 0; t < 7; ++t) {
    EXPECT_EQ(reader.read_transcript(20 + t), second[t]) << "trial " << 20 + t;
  }
}

TEST(Store, FileAndMemoryBackedsAgree) {
  const std::vector<ExecutionTranscript> transcripts = make_transcripts(5);
  StoreWriter writer;
  writer.add_scenario("spec", transcripts);
  const std::string path = testing::TempDir() + "fle_store_roundtrip.flst";
  writer.write_file(path);
  const StoreReader from_file = StoreReader::open_file(path);
  const StoreReader from_memory = StoreReader::from_bytes(writer.finish());
  EXPECT_EQ(from_file.root_hash(), from_memory.root_hash());
  EXPECT_EQ(from_file.read_transcript(3), from_memory.read_transcript(3));
  std::remove(path.c_str());
}

TEST(Store, EmptyWriterThrows) {
  const StoreWriter writer;
  EXPECT_THROW((void)writer.finish(), std::logic_error);
}

TEST(Store, MalformedImagesAreRejected) {
  StoreWriter writer;
  const std::vector<ExecutionTranscript> transcripts = make_transcripts(3);
  writer.add_scenario("spec", transcripts);
  const std::vector<std::uint8_t> good = writer.finish();

  {  // wrong magic
    std::vector<std::uint8_t> bad = good;
    bad[0] = 'X';
    EXPECT_THROW((void)StoreReader::from_bytes(std::move(bad)), std::invalid_argument);
  }
  {  // unsupported version
    std::vector<std::uint8_t> bad = good;
    bad[4] = 99;
    EXPECT_THROW((void)StoreReader::from_bytes(std::move(bad)), std::invalid_argument);
  }
  {  // truncated footer
    std::vector<std::uint8_t> bad(good.begin(), good.end() - 10);
    EXPECT_THROW((void)StoreReader::from_bytes(std::move(bad)), std::invalid_argument);
  }
  {  // corrupt end magic
    std::vector<std::uint8_t> bad = good;
    bad[bad.size() - 1] ^= 0x01;
    EXPECT_THROW((void)StoreReader::from_bytes(std::move(bad)), std::invalid_argument);
  }
  {  // corrupt footer root hash: opening is lazy, the first descent throws
    std::vector<std::uint8_t> bad = good;
    bad[bad.size() - 5] ^= 0x01;  // last byte of the footer's 32-byte root hash
    const StoreReader reader = StoreReader::from_bytes(std::move(bad));
    EXPECT_THROW((void)reader.read_blob(0), std::invalid_argument);
  }
  {  // a flipped byte inside the first leaf record surfaces on first touch
    std::vector<std::uint8_t> bad = good;
    bad[7] ^= 0x01;  // header is 5 bytes; leaf 0's record starts right after
    const StoreReader reader = StoreReader::from_bytes(std::move(bad));
    EXPECT_THROW((void)reader.read_blob(0), std::invalid_argument);
  }
}

// ---- dedup ------------------------------------------------------------------

TEST(Store, IdenticalBlobsAreStoredOnce) {
  const std::vector<ExecutionTranscript> transcripts = make_transcripts(10);
  StoreWriter writer;
  writer.add_scenario("twin-a", transcripts);
  writer.add_scenario("twin-b", transcripts);  // every leaf repeats
  EXPECT_EQ(writer.trial_count(), 20u);
  EXPECT_EQ(writer.unique_blobs(), 10u);

  const StoreReader reader = StoreReader::from_bytes(writer.finish());
  EXPECT_EQ(reader.unique_blobs(), 10u);
  EXPECT_EQ(reader.logical_blob_bytes(), 2 * reader.stored_blob_bytes());
  // Both copies read back intact despite sharing records.
  EXPECT_EQ(reader.read_transcript(3), reader.read_transcript(13));
}

TEST(Store, BlobAndTranscriptPathsBuildIdenticalImages) {
  const std::vector<ExecutionTranscript> transcripts = make_transcripts(9);
  std::vector<std::vector<std::uint8_t>> blobs;
  blobs.reserve(transcripts.size());
  for (const ExecutionTranscript& t : transcripts) blobs.push_back(t.encode());

  StoreWriter from_transcripts;
  from_transcripts.add_scenario("spec", transcripts);
  StoreWriter from_blobs;
  from_blobs.add_scenario_blobs("spec", blobs);
  EXPECT_EQ(from_transcripts.finish(), from_blobs.finish());
}

// ---- sync -------------------------------------------------------------------

TEST(StoreSync, IdenticalStoresCompareByRootAlone) {
  const std::vector<ExecutionTranscript> transcripts = make_transcripts(40);
  StoreWriter writer;
  writer.add_scenario("spec", transcripts);
  const StoreReader a = StoreReader::from_bytes(writer.finish());
  const StoreReader b = StoreReader::from_bytes(writer.finish());

  const SyncReport report = sync_stores(a, b);
  EXPECT_TRUE(report.identical);
  EXPECT_TRUE(report.divergent_trials.empty());
  // The whole comparison is one footer-hash equality: zero tree reads.
  EXPECT_EQ(report.nodes_read_a, 0u);
  EXPECT_EQ(report.nodes_read_b, 0u);
}

TEST(StoreSync, SingleTamperedTrialIsLocalizedInDepthReads) {
  std::vector<ExecutionTranscript> transcripts = make_transcripts(40);
  StoreWriter writer_a;
  writer_a.add_scenario("spec", transcripts);
  const StoreReader a = StoreReader::from_bytes(writer_a.finish());

  const std::uint64_t tampered = 23;
  transcripts[tampered] = make_transcript(9999);
  StoreWriter writer_b;
  writer_b.add_scenario("spec", transcripts);
  const StoreReader b = StoreReader::from_bytes(writer_b.finish());

  const SyncReport report = sync_stores(a, b);
  EXPECT_FALSE(report.identical);
  EXPECT_TRUE(report.meta_divergence.empty());
  EXPECT_EQ(report.divergent_trials, (std::vector<std::uint64_t>{tampered}));
  ASSERT_TRUE(report.first.has_value());
  EXPECT_EQ(report.first->trial, tampered);
  EXPECT_NE(report.first->what.find(" vs "), std::string::npos) << report.first->what;
  // O(diff): one root-to-leaf path per store — depth inner nodes plus the
  // divergent leaf — not a scan of all 40 trials.
  const std::uint64_t path = static_cast<std::uint64_t>(a.depth()) + 1;
  EXPECT_EQ(report.nodes_read_a, path);
  EXPECT_EQ(report.nodes_read_b, path);
}

TEST(StoreSync, EveryDivergenceIsReportedUpToTheCap) {
  std::vector<ExecutionTranscript> transcripts = make_transcripts(30);
  StoreWriter writer_a;
  writer_a.add_scenario("spec", transcripts);
  const StoreReader a = StoreReader::from_bytes(writer_a.finish());

  for (const std::uint64_t t : {3u, 17u, 28u}) transcripts[t] = make_transcript(5000 + t);
  StoreWriter writer_b;
  writer_b.add_scenario("spec", transcripts);
  const StoreReader b = StoreReader::from_bytes(writer_b.finish());

  const SyncReport all = sync_stores(a, b);
  EXPECT_EQ(all.divergent_trials, (std::vector<std::uint64_t>{3, 17, 28}));
  EXPECT_FALSE(all.truncated);

  const SyncReport capped = sync_stores(a, b, /*max_divergent=*/2);
  EXPECT_EQ(capped.divergent_trials.size(), 2u);
  EXPECT_TRUE(capped.truncated);
}

TEST(StoreSync, MetaDivergenceShortCircuitsWithoutDescent) {
  StoreWriter writer_a;
  writer_a.add_scenario("spec", make_transcripts(10));
  StoreWriter writer_b;
  writer_b.add_scenario("spec", make_transcripts(12));
  const StoreReader a = StoreReader::from_bytes(writer_a.finish());
  const StoreReader b = StoreReader::from_bytes(writer_b.finish());

  const SyncReport report = sync_stores(a, b);
  EXPECT_FALSE(report.identical);
  EXPECT_FALSE(report.meta_divergence.empty());
  EXPECT_EQ(report.nodes_read_a, 0u);
  EXPECT_EQ(report.nodes_read_b, 0u);
}

}  // namespace
}  // namespace fle
