// Coalition placements (Definition 3.1, Figure 1) and their invariants.

#include <gtest/gtest.h>

#include <numeric>

#include "attacks/coalition.h"

namespace fle {
namespace {

TEST(Coalition, SegmentLengthsSumToHonestCount) {
  for (int n : {10, 37, 100}) {
    for (int k : {2, 3, 5}) {
      const auto c = Coalition::equally_spaced(n, k);
      const auto l = c.segment_lengths();
      EXPECT_EQ(std::accumulate(l.begin(), l.end(), 0), n - k);
    }
  }
}

TEST(Coalition, EquallySpacedIsBalanced) {
  const auto c = Coalition::equally_spaced(100, 7);
  const auto l = c.segment_lengths();
  const int lo = *std::min_element(l.begin(), l.end());
  const int hi = *std::max_element(l.begin(), l.end());
  EXPECT_LE(hi - lo, 1);
  EXPECT_EQ(c.k(), 7);
}

TEST(Coalition, ConsecutiveHasOneSegment) {
  const auto c = Coalition::consecutive(20, 6, 5);
  const auto l = c.segment_lengths();
  int nonzero = 0;
  for (const int x : l) nonzero += (x > 0) ? 1 : 0;
  EXPECT_EQ(nonzero, 1);
  EXPECT_EQ(c.max_segment_length(), 14);
}

TEST(Coalition, ConsecutiveWrapsAroundRing) {
  const auto c = Coalition::consecutive(10, 4, 8);  // 8,9,0,1
  EXPECT_TRUE(c.contains(8));
  EXPECT_TRUE(c.contains(9));
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
  EXPECT_EQ(c.max_segment_length(), 6);
}

TEST(Coalition, IndexOfFindsMembersInRingOrder) {
  const auto c = Coalition::equally_spaced(30, 5);
  const auto& m = c.members();
  for (int j = 0; j < c.k(); ++j) {
    EXPECT_EQ(c.index_of(m[static_cast<std::size_t>(j)]), j);
  }
  EXPECT_EQ(c.index_of((m[0] + 1) % 30), -1);
}

TEST(Coalition, CubicStaircaseRespectsConstraints) {
  for (int n : {30, 100, 500, 2000}) {
    const int k = Coalition::cubic_min_k(n);
    const auto c = Coalition::cubic_staircase(n, k);
    const auto l = c.segment_lengths();
    EXPECT_EQ(std::accumulate(l.begin(), l.end(), 0), n - k);
    // Cyclic staircase constraint: forward drops bounded by k-1.
    for (int j = 0; j < k; ++j) {
      EXPECT_LE(l[static_cast<std::size_t>(j)],
                l[static_cast<std::size_t>((j + 1) % k)] + k - 1)
          << "n=" << n << " j=" << j;
    }
    // Last segment (wrap) at most k-1.
    EXPECT_LE(l.back(), k - 1);
    EXPECT_FALSE(c.contains(0));
  }
}

TEST(Coalition, CubicMinKFeasibleAndTight) {
  for (int n : {20, 100, 1000}) {
    const int k = Coalition::cubic_min_k(n);
    EXPECT_NO_THROW(Coalition::cubic_staircase(n, k));
    if (k > 2) {
      EXPECT_THROW(Coalition::cubic_staircase(n, k - 1), std::invalid_argument);
    }
  }
}

TEST(Coalition, BernoulliDensityMatches) {
  const int n = 2000;
  const double p = 0.1;
  double total = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    total += Coalition::bernoulli(n, p, seed).k();
  }
  EXPECT_NEAR(total / 30.0, n * p, 25.0);
}

TEST(Coalition, BernoulliIsSeedDeterministic) {
  const auto a = Coalition::bernoulli(100, 0.2, 7);
  const auto b = Coalition::bernoulli(100, 0.2, 7);
  EXPECT_EQ(a.members(), b.members());
}

TEST(Coalition, RushingPreconditionThreshold) {
  // l_j <= k-1 for equal spacing <=> n <= k^2 (Theorem 4.2's boundary).
  EXPECT_TRUE(Coalition::equally_spaced(25, 5).rushing_precondition_holds());
  EXPECT_FALSE(Coalition::equally_spaced(26, 5).rushing_precondition_holds());
}

TEST(Coalition, RejectsDegenerateInputs) {
  EXPECT_THROW(Coalition(5, {0, 1, 2, 3, 4}), std::invalid_argument);  // nobody honest
  EXPECT_THROW(Coalition(5, {7}), std::invalid_argument);              // out of range
  EXPECT_THROW(Coalition::equally_spaced(10, 0), std::invalid_argument);
  EXPECT_THROW(Coalition::equally_spaced(10, 10), std::invalid_argument);
}

TEST(Coalition, RenderMentionsLayout) {
  const auto c = Coalition::equally_spaced(12, 3);
  const auto s = c.render();
  EXPECT_NE(s.find("n=12"), std::string::npos);
  EXPECT_NE(s.find("k=3"), std::string::npos);
}

}  // namespace
}  // namespace fle
