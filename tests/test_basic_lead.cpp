// Basic-LEAD (Appendix B): honest correctness, uniformity, message counts,
// and Claim B.1's single-adversary takeover.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "attacks/basic_single.h"
#include "protocols/basic_lead.h"
#include "sim/engine.h"

namespace fle {
namespace {

TEST(BasicLead, HonestElectsValidLeaderSmallRings) {
  BasicLeadProtocol protocol;
  for (int n = 2; n <= 24; ++n) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const Outcome o = run_honest(protocol, n, seed * 977 + 13);
      ASSERT_TRUE(o.valid()) << "n=" << n << " seed=" << seed;
      ASSERT_LT(o.leader(), static_cast<Value>(n));
    }
  }
}

TEST(BasicLead, HonestMessageCountIsNSquared) {
  BasicLeadProtocol protocol;
  for (int n : {2, 3, 5, 8, 16, 33}) {
    EngineOptions options;
    RingEngine engine(n, 42, std::move(options));
    std::vector<std::unique_ptr<RingStrategy>> s;
    for (ProcessorId p = 0; p < n; ++p) s.push_back(protocol.make_strategy(p, n));
    const Outcome o = engine.run(std::move(s));
    ASSERT_TRUE(o.valid());
    EXPECT_EQ(engine.stats().total_sent,
              static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
    for (ProcessorId p = 0; p < n; ++p) {
      EXPECT_EQ(engine.stats().sent[static_cast<std::size_t>(p)],
                static_cast<std::uint64_t>(n));
      EXPECT_EQ(engine.stats().received[static_cast<std::size_t>(p)],
                static_cast<std::uint64_t>(n));
    }
  }
}

TEST(BasicLead, HonestElectionIsUniform) {
  BasicLeadProtocol protocol;
  const int n = 8;
  ExperimentConfig config;
  config.n = n;
  config.trials = 4000;
  config.seed = 7;
  const auto result = run_trials(protocol, nullptr, config);
  EXPECT_EQ(result.outcomes.fails(), 0u);
  EXPECT_LT(result.outcomes.chi_square_uniform(), chi_square_critical_999(n - 1));
}

TEST(BasicLead, HonestSyncGapIsModest) {
  BasicLeadProtocol protocol;
  ExperimentConfig config;
  config.n = 32;
  config.trials = 5;
  const auto result = run_trials(protocol, nullptr, config);
  // Basic-LEAD has no synchronization mechanism: the gap can drift with the
  // schedule (unlike A-LEADuni's buffered lock-step, which stays at 1), but
  // honest 1:1 responses keep it well below a full round.
  EXPECT_LE(result.max_sync_gap, 16u);
  EXPECT_GT(result.max_sync_gap, 0u);
}

class BasicSingleAdversary : public ::testing::TestWithParam<int> {};

TEST_P(BasicSingleAdversary, ForcesEveryTarget) {
  const int n = GetParam();
  BasicLeadProtocol protocol;
  for (Value w = 0; w < static_cast<Value>(n); ++w) {
    BasicSingleDeviation deviation(n, /*adversary=*/n / 2, w);
    ExperimentConfig config;
    config.n = n;
    config.trials = 8;
    config.seed = 1000 + w;
    const auto result = run_trials(protocol, &deviation, config);
    EXPECT_EQ(result.outcomes.count(w), result.outcomes.trials())
        << "n=" << n << " w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Rings, BasicSingleAdversary, ::testing::Values(4, 7, 16, 33));

TEST(BasicSingleAdversaryEdge, AdversaryNextToOriginWorks) {
  const int n = 12;
  BasicLeadProtocol protocol;
  for (ProcessorId adv : {1, n - 1}) {
    BasicSingleDeviation deviation(n, adv, 5);
    ExperimentConfig config;
    config.n = n;
    config.trials = 10;
    const auto result = run_trials(protocol, &deviation, config);
    EXPECT_EQ(result.outcomes.count(5), result.outcomes.trials()) << "adv=" << adv;
  }
}

TEST(BasicSingleAdversaryEdge, OriginAdversaryAlsoControls) {
  // Claim B.1 holds for any single adversary; processor 0 included (it still
  // receives all other values before having to commit, because it can stay
  // silent at wake-up while the others fire).
  const int n = 9;
  BasicLeadProtocol protocol;
  BasicSingleDeviation deviation(n, 0, 3);
  ExperimentConfig config;
  config.n = n;
  config.trials = 10;
  const auto result = run_trials(protocol, &deviation, config);
  EXPECT_EQ(result.outcomes.count(3), result.outcomes.trials());
}

TEST(BasicLead, UtilityGainMatchesLemma24) {
  // The adversary's indicator utility jumps from 1/n (honest) to 1 (attack):
  // the protocol is not eps-1-resilient for eps < 1 - 1/n.
  const int n = 10;
  BasicLeadProtocol protocol;
  ExperimentConfig config;
  config.n = n;
  config.trials = 3000;
  const auto honest = run_trials(protocol, nullptr, config);
  const RationalUtility u = RationalUtility::indicator(n, 4);
  const double honest_u = expected_utility(u, honest.outcomes.distribution());
  EXPECT_NEAR(honest_u, 1.0 / n, 0.03);

  BasicSingleDeviation deviation(n, 2, 4);
  config.trials = 50;
  const auto attacked = run_trials(protocol, &deviation, config);
  const double attacked_u = expected_utility(u, attacked.outcomes.distribution());
  EXPECT_DOUBLE_EQ(attacked_u, 1.0);
}

}  // namespace
}  // namespace fle
