// Synchronous scenarios (Section 1.1): lockstep engine semantics and the
// k = n-1 resilience of the synchronous broadcast/ring elections.

#include <gtest/gtest.h>

#include <cmath>

#include "protocols/sync_lead.h"
#include "sim/sync_engine.h"

namespace fle {
namespace {

TEST(SyncEngine, RoundsDeliverSimultaneously) {
  // Sender emits in round 1; receiver must see it in round 2, not round 1.
  class Probe final : public SyncStrategy {
   public:
    explicit Probe(std::vector<int>* log) : log_(log) {}
    void on_round(SyncContext& ctx, const SyncInbox& inbox) override {
      if (ctx.id() == 0 && ctx.round() == 1) ctx.send(1, {42});
      if (ctx.id() == 1 && !inbox.empty()) {
        log_->push_back(ctx.round());
        ctx.terminate(0);
      }
      if (ctx.id() == 0 && ctx.round() == 2) ctx.terminate(0);
    }

   private:
    std::vector<int>* log_;
  };
  std::vector<int> log;
  SyncEngine engine(2, 1);
  std::vector<std::unique_ptr<SyncStrategy>> s;
  s.push_back(std::make_unique<Probe>(&log));
  s.push_back(std::make_unique<Probe>(&log));
  ASSERT_TRUE(engine.run(std::move(s)).valid());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 2);
}

TEST(SyncEngine, RoundLimitStopsSpinners) {
  class Spinner final : public SyncStrategy {
   public:
    void on_round(SyncContext& ctx, const SyncInbox&) override {
      ctx.send(ring_succ(ctx.id(), ctx.network_size()), {0});
    }
  };
  SyncEngineOptions options;
  options.round_limit = 10;
  SyncEngine engine(3, 1, options);
  std::vector<std::unique_ptr<SyncStrategy>> s;
  for (int i = 0; i < 3; ++i) s.push_back(std::make_unique<Spinner>());
  EXPECT_TRUE(engine.run(std::move(s)).failed());
  EXPECT_TRUE(engine.stats().round_limit_hit);
}

TEST(SyncBroadcastLead, HonestElectsValidLeader) {
  SyncBroadcastLeadProtocol protocol;
  for (int n : {2, 3, 8, 20}) {
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      const Outcome o = run_honest_sync(protocol, n, seed * 11 + 1);
      ASSERT_TRUE(o.valid()) << "n=" << n << " seed=" << seed;
      ASSERT_LT(o.leader(), static_cast<Value>(n));
    }
  }
}

TEST(SyncBroadcastLead, OutcomeIsSumOfSecrets) {
  const int n = 7;
  SyncBroadcastLeadProtocol protocol;
  for (std::uint64_t seed : {3ull, 33ull}) {
    Value expected = 0;
    for (ProcessorId p = 0; p < n; ++p) {
      RandomTape tape(seed, p);
      expected = (expected + tape.uniform(static_cast<Value>(n))) % n;
    }
    const Outcome o = run_honest_sync(protocol, n, seed);
    ASSERT_TRUE(o.valid());
    EXPECT_EQ(o.leader(), expected);
  }
}

TEST(SyncRingLead, HonestElectsValidLeader) {
  SyncRingLeadProtocol protocol;
  for (int n : {2, 3, 9, 16}) {
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      const Outcome o = run_honest_sync(protocol, n, seed * 13 + 5);
      ASSERT_TRUE(o.valid()) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(SyncRingLead, MatchesBroadcastOutcome) {
  // Same secrets (same tapes), same sum: the two synchronous protocols
  // agree trial for trial.
  const int n = 9;
  SyncBroadcastLeadProtocol bc;
  SyncRingLeadProtocol ring;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    EXPECT_EQ(run_honest_sync(bc, n, seed), run_honest_sync(ring, n, seed));
  }
}

// --- deviations --------------------------------------------------------------

/// Broadcasts one round late — the rushing move that wins in asynchrony.
class LateBroadcaster final : public SyncStrategy {
 public:
  void on_round(SyncContext& ctx, const SyncInbox& inbox) override {
    const auto n = static_cast<Value>(ctx.network_size());
    if (ctx.round() == 1) return;  // wait: see everyone's secrets first
    if (ctx.round() == 2) {
      Value others = 0;
      for (const auto& [from, m] : inbox) others = (others + m[0]) % n;
      ctx.broadcast({(0 + n - others) % n});  // aim for leader 0
      return;
    }
    ctx.terminate(0);
  }
};

TEST(SyncBroadcastLead, LateBroadcasterIsDetected) {
  // In the synchronous model the round-2 validation sees a missing round-1
  // value: the would-be rushing attack cannot exist.
  const int n = 8;
  SyncBroadcastLeadProtocol protocol;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    SyncEngine engine(n, seed);
    std::vector<std::unique_ptr<SyncStrategy>> s;
    for (ProcessorId p = 0; p < n; ++p) {
      if (p == 3) {
        s.push_back(std::make_unique<LateBroadcaster>());
      } else {
        s.push_back(protocol.make_strategy(p, n));
      }
    }
    EXPECT_TRUE(engine.run(std::move(s)).failed()) << seed;
  }
}

/// Sends legal but adversarially fixed values in round 1 (the strongest
/// undetectable deviation under synchrony).
class BlindFixedValue final : public SyncStrategy {
 public:
  explicit BlindFixedValue(Value v) : v_(v) {}
  void on_round(SyncContext& ctx, const SyncInbox& inbox) override {
    const auto n = static_cast<Value>(ctx.network_size());
    if (ctx.round() == 1) {
      ctx.broadcast({v_ % n});
      return;
    }
    if (static_cast<int>(inbox.size()) != ctx.network_size() - 1) return ctx.abort();
    Value sum = v_ % n;
    for (const auto& [from, m] : inbox) sum = (sum + m[0]) % n;
    ctx.terminate(sum);
  }

 private:
  Value v_;
};

TEST(SyncBroadcastLead, NMinusOneColludersGainNothing) {
  // The paper's k = n-1 resilience: all but one processor collude on fixed
  // values; the single honest uniform secret keeps the outcome uniform.
  const int n = 6;
  SyncBroadcastLeadProtocol protocol;
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    SyncEngine engine(n, static_cast<std::uint64_t>(t) * 17 + 3);
    std::vector<std::unique_ptr<SyncStrategy>> s;
    for (ProcessorId p = 0; p < n; ++p) {
      if (p == 2) {
        s.push_back(protocol.make_strategy(p, n));  // the lone honest one
      } else {
        s.push_back(std::make_unique<BlindFixedValue>(static_cast<Value>(p)));
      }
    }
    const Outcome o = engine.run(std::move(s));
    ASSERT_TRUE(o.valid());
    ++counts[static_cast<std::size_t>(o.leader())];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, trials / n, 5 * std::sqrt(trials / static_cast<double>(n)));
  }
}

TEST(SyncRingLead, SilentProcessorDetected) {
  const int n = 7;
  SyncRingLeadProtocol protocol;
  class Silent final : public SyncStrategy {
   public:
    void on_round(SyncContext& ctx, const SyncInbox&) override {
      if (ctx.round() > ctx.network_size()) ctx.terminate(0);
    }
  };
  SyncEngine engine(n, 9);
  std::vector<std::unique_ptr<SyncStrategy>> s;
  for (ProcessorId p = 0; p < n; ++p) {
    if (p == 4) {
      s.push_back(std::make_unique<Silent>());
    } else {
      s.push_back(protocol.make_strategy(p, n));
    }
  }
  EXPECT_TRUE(engine.run(std::move(s)).failed());
}

TEST(SyncRingLead, DoubleSenderDetected) {
  const int n = 6;
  SyncRingLeadProtocol protocol;
  class DoubleSender final : public SyncStrategy {
   public:
    void on_round(SyncContext& ctx, const SyncInbox&) override {
      const ProcessorId succ = ring_succ(ctx.id(), ctx.network_size());
      if (ctx.round() == 1) {
        ctx.send(succ, {1});
        ctx.send(succ, {2});  // off-schedule extra message
        return;
      }
      if (ctx.round() >= ctx.network_size()) ctx.terminate(0);
    }
  };
  SyncEngine engine(n, 4);
  std::vector<std::unique_ptr<SyncStrategy>> s;
  for (ProcessorId p = 0; p < n; ++p) {
    if (p == 1) {
      s.push_back(std::make_unique<DoubleSender>());
    } else {
      s.push_back(protocol.make_strategy(p, n));
    }
  }
  EXPECT_TRUE(engine.run(std::move(s)).failed());
}

}  // namespace
}  // namespace fle
