// Batched lane engine (sim/lane_engine.h) and the digest-guided
// specializer (api/specialize.h): the bit-identity gate against the scalar
// engine across kernels, schedulers, lane widths, and worker counts, the
// routing rules, and the new spec fields' round trip.

#include "sim/lane_engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "api/scenario.h"
#include "api/specialize.h"
#include "api/sweep.h"
#include "sim/sync_engine.h"
#include "verify/differential.h"
#include "verify/fuzzer.h"

namespace fle {
namespace {

ScenarioSpec ring_spec(const char* protocol, int n, SchedulerKind scheduler) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.n = n;
  spec.trials = 48;
  spec.seed = 414243;
  spec.scheduler = scheduler;
  return spec;
}

TEST(LaneEngine, BitIdenticalToScalarAcrossKernelsWidthsAndWorkers) {
  // The acceptance grid: every lane kernel at lane widths 1/4/8/16 and
  // 1/4/8 workers.  check_lane_differential compares per-trial outcomes,
  // aggregates, and per-trial transcripts (digests included).
  const struct {
    int lanes;
    int threads;
  } grid[] = {{1, 1}, {4, 4}, {8, 8}, {16, 1}, {4, 8}, {8, 4}, {16, 8}, {1, 4}};
  for (const char* protocol : {"basic-lead", "chang-roberts", "alead-uni"}) {
    for (const auto& cell : grid) {
      const auto result = verify::check_lane_differential(
          ring_spec(protocol, 11, SchedulerKind::kRoundRobin), cell.lanes, cell.threads);
      EXPECT_TRUE(result.passed) << result.subject << ": " << result.detail;
    }
  }
}

TEST(LaneEngine, DeviatedKernelsBitIdenticalAcrossWidthsAndWorkers) {
  // The deviated lane kernels (PR 6): the Claim B.1 lone adversary on
  // BASIC-LEAD and the Lemma 4.1 rushing coalition on A-LEADuni, across
  // the same width/worker grid as the honest kernels.
  const struct {
    int lanes;
    int threads;
  } grid[] = {{1, 1}, {4, 4}, {8, 8}, {16, 1}, {4, 8}, {8, 4}, {16, 8}, {1, 4}};
  for (const auto& cell : grid) {
    ScenarioSpec single = ring_spec("basic-lead", 11, SchedulerKind::kRoundRobin);
    single.deviation = "basic-single";
    single.target = 5;
    auto result = verify::check_lane_differential(single, cell.lanes, cell.threads);
    EXPECT_TRUE(result.passed) << result.subject << ": " << result.detail;

    ScenarioSpec rushing = ring_spec("alead-uni", 12, SchedulerKind::kRoundRobin);
    rushing.deviation = "rushing";
    rushing.coalition = CoalitionSpec::equally_spaced(4, 1);
    rushing.target = 7;
    result = verify::check_lane_differential(rushing, cell.lanes, cell.threads);
    EXPECT_TRUE(result.passed) << result.subject << ": " << result.detail;
  }
}

TEST(LaneEngine, DeviatedKernelsBitIdenticalUnderDataDependentSchedulers) {
  // Off the round-robin fast paths the deviated kernels run the general
  // burst loop; the random and priority schedulers exercise it.
  for (const SchedulerKind scheduler : {SchedulerKind::kRandom, SchedulerKind::kPriority}) {
    ScenarioSpec single = ring_spec("basic-lead", 10, scheduler);
    single.deviation = "basic-single";
    single.target = 3;
    auto result = verify::check_lane_differential(single, /*lanes=*/8, /*threads=*/2);
    EXPECT_TRUE(result.passed) << result.detail;

    ScenarioSpec rushing = ring_spec("alead-uni", 12, scheduler);
    rushing.deviation = "rushing";
    rushing.coalition = CoalitionSpec::equally_spaced(4, 1);
    rushing.target = 2;
    result = verify::check_lane_differential(rushing, /*lanes=*/4, /*threads=*/3);
    EXPECT_TRUE(result.passed) << result.detail;
  }
}

TEST(SyncLaneEngine, BitIdenticalAcrossKernelsWidthsAndWorkers) {
  // The sync-runtime lanes (PR 6): both sync kernels against the scalar
  // SyncEngine round loop — rounds, messages, and the per-round
  // phase/delivery/decision transcripts.
  const struct {
    int lanes;
    int threads;
  } grid[] = {{1, 1}, {4, 4}, {8, 8}, {16, 1}, {4, 8}, {8, 4}, {16, 8}, {1, 4}};
  for (const char* protocol : {"sync-broadcast-lead", "sync-ring-lead"}) {
    for (const auto& cell : grid) {
      ScenarioSpec spec;
      spec.topology = TopologyKind::kSync;
      spec.protocol = protocol;
      spec.n = 11;
      spec.trials = 48;
      spec.seed = 414243;
      const auto result = verify::check_lane_differential(spec, cell.lanes, cell.threads);
      EXPECT_TRUE(result.passed) << result.subject << ": " << result.detail;
    }
  }
}

TEST(SyncLaneEngine, RoundLimitStarvationMatchesScalar) {
  // A starving round limit must abort the same way on both engines (the
  // sync lanes replicate the limit check before the round counter moves).
  ScenarioSpec spec;
  spec.topology = TopologyKind::kSync;
  spec.protocol = "sync-ring-lead";
  spec.n = 10;
  spec.trials = 24;
  spec.seed = 99;
  spec.step_limit = 4;  // sync-ring-lead needs n + 3 rounds
  const auto result = verify::check_lane_differential(spec, /*lanes=*/4, /*threads=*/1);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(SyncLaneEngine, RunWindowValidatesSpans) {
  SyncLaneEngine engine(8, SyncLaneKernelId::kSyncBroadcast, SyncLaneEngineOptions{});
  std::vector<std::uint64_t> seeds(4, 1);
  std::vector<LaneTrialResult> results(3);
  EXPECT_THROW(engine.run_window(seeds, results), std::invalid_argument);
}

TEST(LaneEngine, BitIdenticalUnderEveryScheduler) {
  for (const SchedulerKind scheduler :
       {SchedulerKind::kRoundRobin, SchedulerKind::kRandom, SchedulerKind::kPriority}) {
    const auto result = verify::check_lane_differential(
        ring_spec("chang-roberts", 9, scheduler), /*lanes=*/4, /*threads=*/2);
    EXPECT_TRUE(result.passed) << result.detail;
  }
}

TEST(LaneEngine, BitIdenticalUnderCounterRng) {
  // rng=ctr swaps the tape generator in BOTH engines; lane-vs-scalar
  // identity must survive the swap.
  for (const char* protocol : {"basic-lead", "chang-roberts", "alead-uni"}) {
    ScenarioSpec spec = ring_spec(protocol, 8, SchedulerKind::kRandom);
    spec.rng = RngKind::kCtr;
    const auto result = verify::check_lane_differential(spec, /*lanes=*/8, /*threads=*/3);
    EXPECT_TRUE(result.passed) << result.detail;
  }
}

TEST(LaneEngine, ShardedWindowsMergeLikeScalar) {
  // Lane seeds derive from the GLOBAL trial index, so a sharded window on
  // the lane engine equals the same window cut from the monolithic run.
  ScenarioSpec whole = ring_spec("basic-lead", 9, SchedulerKind::kRoundRobin);
  whole.engine = EngineKind::kLanes;
  whole.lanes = 4;
  whole.record_outcomes = true;
  ScenarioSpec shard = whole;
  shard.trial_offset = 13;
  shard.trial_count = 17;
  const ScenarioResult all = run_scenario(whole);
  const ScenarioResult cut = run_scenario(shard);
  ASSERT_EQ(cut.per_trial.size(), 17u);
  for (std::size_t t = 0; t < cut.per_trial.size(); ++t) {
    EXPECT_EQ(cut.per_trial[t], all.per_trial[13 + t]) << "trial " << t;
  }
}

TEST(LaneEngine, StepLimitStarvationMatchesScalar) {
  // A starving step limit must FAIL the same trials on both engines (the
  // retirement policy mirrors the scalar run loop's break semantics).
  ScenarioSpec spec = ring_spec("basic-lead", 10, SchedulerKind::kRoundRobin);
  spec.step_limit = 35;  // below the n*n honest requirement
  const auto result = verify::check_lane_differential(spec, /*lanes=*/4, /*threads=*/1);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(LaneEngine, RunWindowValidatesSpans) {
  LaneEngine engine(8, LaneKernelId::kBasicLead, LaneEngineOptions{});
  std::vector<std::uint64_t> seeds(4, 1);
  std::vector<LaneTrialResult> results(3);
  EXPECT_THROW(engine.run_window(seeds, results), std::invalid_argument);
  EXPECT_THROW(LaneEngine(1, LaneKernelId::kBasicLead, LaneEngineOptions{}),
               std::invalid_argument);
}

TEST(Specializer, KernelMapCoversTheThreeLaneProtocols) {
  EXPECT_EQ(lane_kernel_for("basic-lead"), LaneKernelId::kBasicLead);
  EXPECT_EQ(lane_kernel_for("chang-roberts"), LaneKernelId::kChangRoberts);
  EXPECT_EQ(lane_kernel_for("alead-uni"), LaneKernelId::kALeadUni);
  EXPECT_FALSE(lane_kernel_for("peterson").has_value());
  EXPECT_FALSE(lane_kernel_for("phase-async-lead").has_value());
}

TEST(Specializer, EligibilityIsStructural) {
  ScenarioSpec spec = ring_spec("basic-lead", 8, SchedulerKind::kRoundRobin);
  EXPECT_TRUE(lane_eligible(spec));
  // The lane-served deviated profiles are eligible too (PR 6).
  ScenarioSpec deviated = spec;
  deviated.deviation = "basic-single";
  EXPECT_TRUE(lane_eligible(deviated));
  ScenarioSpec rushing = spec;
  rushing.protocol = "alead-uni";
  rushing.deviation = "rushing";
  EXPECT_TRUE(lane_eligible(rushing));
  ScenarioSpec other_dev = spec;
  other_dev.deviation = "cubic";
  EXPECT_FALSE(lane_eligible(other_dev));
  EXPECT_NE(lane_ineligible_reason(other_dev).find("cubic"), std::string::npos);
  ScenarioSpec graph = spec;
  graph.topology = TopologyKind::kGraph;
  EXPECT_FALSE(lane_eligible(graph));
  ScenarioSpec no_kernel = spec;
  no_kernel.protocol = "peterson";
  EXPECT_FALSE(lane_eligible(no_kernel));
  EXPECT_NE(lane_ineligible_reason(no_kernel).find("peterson"), std::string::npos);
  // Sync specs: honest lane-kernel protocols are eligible, deviated or
  // kernel-less ones are not.
  ScenarioSpec sync;
  sync.topology = TopologyKind::kSync;
  sync.protocol = "sync-broadcast-lead";
  sync.n = 8;
  EXPECT_TRUE(lane_eligible(sync));
  sync.protocol = "sync-ring-lead";
  EXPECT_TRUE(lane_eligible(sync));
  ScenarioSpec sync_dev = sync;
  sync_dev.deviation = "sync-blind-collusion";
  EXPECT_FALSE(lane_eligible(sync_dev));
  ScenarioSpec sync_other = sync;
  sync_other.protocol = "basic-lead";
  EXPECT_FALSE(lane_eligible(sync_other));
  // Eligible specs report no reason.
  EXPECT_TRUE(lane_ineligible_reason(spec).empty());
  EXPECT_TRUE(lane_ineligible_reason(sync).empty());
}

TEST(Specializer, ForcedLanesRejectsIneligibleSpecs) {
  ScenarioSpec spec = ring_spec("peterson", 8, SchedulerKind::kRoundRobin);
  spec.engine = EngineKind::kLanes;
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
  ScenarioSpec deviated = ring_spec("alead-uni", 8, SchedulerKind::kRoundRobin);
  deviated.engine = EngineKind::kLanes;
  deviated.deviation = "cubic";  // no lane register mapping
  deviated.target = 3;
  EXPECT_THROW(run_scenario(deviated), std::invalid_argument);
  ScenarioSpec sync_dev;
  sync_dev.topology = TopologyKind::kSync;
  sync_dev.protocol = "sync-broadcast-lead";
  sync_dev.deviation = "sync-blind-collusion";
  sync_dev.coalition = CoalitionSpec::consecutive(2, 1);
  sync_dev.n = 8;
  sync_dev.engine = EngineKind::kLanes;
  EXPECT_THROW(run_scenario(sync_dev), std::invalid_argument);
}

TEST(Specializer, CensusRoutesDominantShapesOnly) {
  // 1000 trials of one shape vs 10 of another: the big shape dominates
  // (>= 1/16 of the weight), the small one routes to lanes only when the
  // submission is small enough for it to matter.
  ScenarioSpec big = ring_spec("basic-lead", 16, SchedulerKind::kRoundRobin);
  big.trials = 1000;
  ScenarioSpec small = ring_spec("chang-roberts", 5, SchedulerKind::kRoundRobin);
  small.trials = 10;
  ShapeCensus census;
  census.add(big);
  census.add(small);
  EXPECT_TRUE(route_to_lanes(big, census));
  EXPECT_FALSE(route_to_lanes(small, census));
  // Explicit engine= overrides the census in both directions.
  ScenarioSpec forced_scalar = big;
  forced_scalar.engine = EngineKind::kScalar;
  EXPECT_FALSE(route_to_lanes(forced_scalar, census));
  ScenarioSpec forced_lanes = small;
  forced_lanes.engine = EngineKind::kLanes;
  EXPECT_TRUE(route_to_lanes(forced_lanes, census));
}

TEST(Specializer, SweepRoutingIsInvisibleInResults) {
  // A mixed sweep (dominant lane-eligible shape + scalar-only shapes) must
  // produce results identical to the same sweep with lanes forced off.
  SweepSpec sweep;
  ScenarioSpec hot = ring_spec("basic-lead", 12, SchedulerKind::kRoundRobin);
  hot.trials = 400;
  hot.record_outcomes = true;
  ScenarioSpec cold = ring_spec("peterson", 6, SchedulerKind::kRoundRobin);
  cold.trials = 20;
  cold.record_outcomes = true;
  sweep.scenarios = {hot, cold};
  sweep.threads = 2;
  const std::vector<ScenarioResult> routed = run_sweep(sweep);

  SweepSpec scalar_sweep = sweep;
  for (ScenarioSpec& spec : scalar_sweep.scenarios) spec.engine = EngineKind::kScalar;
  const std::vector<ScenarioResult> scalar = run_sweep(scalar_sweep);

  ASSERT_EQ(routed.size(), scalar.size());
  for (std::size_t i = 0; i < routed.size(); ++i) {
    EXPECT_EQ(routed[i].per_trial, scalar[i].per_trial) << "scenario " << i;
    EXPECT_EQ(routed[i].total_messages, scalar[i].total_messages);
    EXPECT_EQ(routed[i].max_sync_gap, scalar[i].max_sync_gap);
  }
}

TEST(Specializer, SpecFieldsRoundTripThroughFormatAndParse) {
  ScenarioSpec spec = ring_spec("alead-uni", 9, SchedulerKind::kPriority);
  spec.engine = EngineKind::kLanes;
  spec.lanes = 16;
  spec.rng = RngKind::kCtr;
  const ScenarioSpec parsed = verify::parse_spec(verify::format_spec(spec));
  EXPECT_EQ(parsed.engine, EngineKind::kLanes);
  EXPECT_EQ(parsed.lanes, 16);
  EXPECT_EQ(parsed.rng, RngKind::kCtr);
  EXPECT_EQ(verify::format_spec(parsed), verify::format_spec(spec));
  // Defaults stay omitted; unknown values are rejected.
  const ScenarioSpec defaults = ring_spec("basic-lead", 8, SchedulerKind::kRoundRobin);
  EXPECT_EQ(verify::format_spec(defaults).find("engine="), std::string::npos);
  EXPECT_THROW(verify::parse_spec("protocol=basic-lead n=4 engine=warp"),
               std::invalid_argument);
  EXPECT_THROW(verify::parse_spec("protocol=basic-lead n=4 rng=mt19937"),
               std::invalid_argument);
}

TEST(Specializer, CtrRngIsRingOnly) {
  ScenarioSpec spec = ring_spec("basic-lead", 8, SchedulerKind::kRoundRobin);
  spec.topology = TopologyKind::kThreaded;
  spec.rng = RngKind::kCtr;
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

}  // namespace
}  // namespace fle
