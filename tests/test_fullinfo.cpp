// Full-information model: the turn-game substrate, Saks' pass-the-baton,
// and the one-round majority coin (paper Related Work comparators).

#include <gtest/gtest.h>

#include <cmath>

#include "fullinfo/baton.h"
#include "fullinfo/majority.h"
#include "fullinfo/turn_game.h"

namespace fle {
namespace {

TEST(BatonGame, ReplayTracksHolderAndUnvisited) {
  BatonGame g(5);
  const auto s0 = g.replay({});
  EXPECT_EQ(s0.holder, 0);
  EXPECT_EQ(s0.unvisited, (std::vector<ProcessorId>{1, 2, 3, 4}));
  const auto s1 = g.replay({2});  // pass to the 3rd unvisited: player 3
  EXPECT_EQ(s1.holder, 3);
  EXPECT_EQ(s1.unvisited, (std::vector<ProcessorId>{1, 2, 4}));
  EXPECT_FALSE(g.finished({2}));
  EXPECT_EQ(g.action_count({2}), 3u);
}

TEST(BatonGame, HonestElectsUniformlyAmongNonStarters) {
  const int n = 8;
  BatonGame g(n);
  Xoshiro256 rng(42);
  std::vector<int> wins(static_cast<std::size_t>(n), 0);
  const int trials = 14000;
  for (int i = 0; i < trials; ++i) {
    ++wins[static_cast<std::size_t>(play_turn_game(g, {}, nullptr, rng))];
  }
  EXPECT_EQ(wins[0], 0);  // the starter never receives the baton
  for (int p = 1; p < n; ++p) {
    EXPECT_NEAR(wins[static_cast<std::size_t>(p)], trials / (n - 1),
                5 * std::sqrt(trials / (n - 1.0)))
        << p;
  }
}

TEST(BatonGame, GreedyCoalitionBoostsTarget) {
  const int n = 16;
  BatonGame g(n);
  const ProcessorId target = 9;
  Xoshiro256 rng(7);
  const int trials = 4000;
  double honest_rate = 0, small_rate = 0, large_rate = 0;
  {
    int hits = 0;
    for (int i = 0; i < trials; ++i) {
      hits += play_turn_game(g, {}, nullptr, rng) == static_cast<Value>(target);
    }
    honest_rate = static_cast<double>(hits) / trials;
  }
  {
    std::vector<ProcessorId> coalition{1, 2};
    BatonGreedyAdversary adv(coalition, target);
    int hits = 0;
    for (int i = 0; i < trials; ++i) {
      hits += play_turn_game(g, coalition, &adv, rng) == static_cast<Value>(target);
    }
    small_rate = static_cast<double>(hits) / trials;
  }
  {
    std::vector<ProcessorId> coalition{1, 2, 3, 4, 5, 6, 7, 8};
    BatonGreedyAdversary adv(coalition, target);
    int hits = 0;
    for (int i = 0; i < trials; ++i) {
      hits += play_turn_game(g, coalition, &adv, rng) == static_cast<Value>(target);
    }
    large_rate = static_cast<double>(hits) / trials;
  }
  EXPECT_NEAR(honest_rate, 1.0 / (n - 1), 0.02);
  EXPECT_GT(small_rate, honest_rate);        // some influence
  EXPECT_GT(large_rate, 3 * honest_rate);    // large coalitions dominate
  EXPECT_GT(large_rate, small_rate);
}

TEST(BatonGame, CoalitionCannotElectTheStarter) {
  const int n = 6;
  BatonGame g(n);
  std::vector<ProcessorId> coalition{1, 2, 3};
  BatonGreedyAdversary adv(coalition, 0);
  Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(play_turn_game(g, coalition, &adv, rng), 0u);
  }
}

TEST(MajorityCoin, HonestIsFair) {
  const int n = 15;
  MajorityCoinGame g(n);
  Xoshiro256 rng(11);
  int ones = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) ones += play_turn_game(g, {}, nullptr, rng) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.5, 0.02);
}

TEST(MajorityCoin, TieBreaksToZeroOnEvenN) {
  MajorityCoinGame g(4);
  EXPECT_EQ(g.outcome({1, 1, 0, 0}), 0u);
  EXPECT_EQ(g.outcome({1, 1, 1, 0}), 1u);
}

TEST(MajorityCoin, CoalitionBiasMatchesBinomialEstimate) {
  const int n = 25;
  MajorityCoinGame g(n);
  Xoshiro256 rng(5);
  for (const int k : {1, 3, 5, 9}) {
    std::vector<ProcessorId> coalition;
    for (int i = 0; i < k; ++i) coalition.push_back(i);
    MajorityTargetAdversary adv(1);
    int ones = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
      ones += play_turn_game(g, coalition, &adv, rng) == 1;
    }
    const double measured = static_cast<double>(ones) / trials - 0.5;
    const double predicted = majority_bias_estimate(n, k);
    EXPECT_NEAR(measured, predicted, 0.02) << "k=" << k;
  }
}

TEST(MajorityCoin, BiasGrowsLikeKOverSqrtN) {
  // Theta(k / sqrt(n)) scaling: doubling k roughly doubles the bias while
  // the bias is small.
  const int n = 101;
  const double b2 = majority_bias_estimate(n, 2);
  const double b4 = majority_bias_estimate(n, 4);
  const double b8 = majority_bias_estimate(n, 8);
  EXPECT_NEAR(b4 / b2, 2.0, 0.5);
  EXPECT_NEAR(b8 / b4, 2.0, 0.6);
  // And the absolute scale tracks the Gaussian slope: k / sqrt(2*pi*n).
  EXPECT_NEAR(b4, 4 / std::sqrt(2.0 * M_PI * n), 0.03);
}

TEST(TurnGame, AdversaryActionsAreClamped) {
  // An adversary returning an out-of-range action is reduced mod the bound,
  // never crashing the runner.
  class Wild final : public TurnAdversary {
   public:
    Value choose(const TurnGame&, const Transcript&, ProcessorId) override {
      return 0xffff'ffffull;
    }
  };
  BatonGame g(5);
  std::vector<ProcessorId> coalition{1, 2, 3, 4};
  Wild adv;
  Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    const Value leader = play_turn_game(g, coalition, &adv, rng);
    EXPECT_LT(leader, 5u);
  }
}

}  // namespace
}  // namespace fle
