// RNG substrate: determinism, bounds, rough uniformity.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/rng.h"

namespace fle {
namespace {

TEST(Rng, SplitMixIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

TEST(Rng, Mix64ChangesWithInput) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 1000; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Rng, XoshiroDeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  bool all_equal_c = true;
  for (int i = 0; i < 64; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(123);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(99);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(bound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 10.0, 5.0 * std::sqrt(trials / 10.0));
  }
}

TEST(Rng, Uniform01InRange) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RandomTape, IndependentPerProcessor) {
  RandomTape t0(1, 0), t1(1, 1), t0b(1, 0);
  bool identical = true;
  for (int i = 0; i < 32; ++i) {
    const Value a = t0.uniform(1000);
    EXPECT_EQ(a, t0b.uniform(1000));  // same seed+id => same tape
    if (a != t1.uniform(1000)) identical = false;
  }
  EXPECT_FALSE(identical);  // different ids => different tapes
}

TEST(RandomTape, DifferentTrialSeedsDiffer) {
  RandomTape a(1, 0), b(2, 0);
  bool identical = true;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform(1 << 20) != b.uniform(1 << 20)) identical = false;
  }
  EXPECT_FALSE(identical);
}

}  // namespace
}  // namespace fle
