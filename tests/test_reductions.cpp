// Theorem 8.1: leader election <-> coin toss reductions and their bias
// bounds.

#include <gtest/gtest.h>

#include "core/reductions.h"
#include "core/rng.h"

namespace fle {
namespace {

TEST(Reductions, CoinFromLeaderParity) {
  EXPECT_EQ(coin_from_leader(Outcome::elected(0)), CoinResult::kZero);
  EXPECT_EQ(coin_from_leader(Outcome::elected(1)), CoinResult::kOne);
  EXPECT_EQ(coin_from_leader(Outcome::elected(7)), CoinResult::kOne);
  EXPECT_EQ(coin_from_leader(Outcome::elected(8)), CoinResult::kZero);
  EXPECT_EQ(coin_from_leader(Outcome::fail()), CoinResult::kFail);
}

TEST(Reductions, TossesNeededIsLog2) {
  EXPECT_EQ(tosses_needed(2), 1);
  EXPECT_EQ(tosses_needed(8), 3);
  EXPECT_EQ(tosses_needed(1024), 10);
}

TEST(Reductions, LeaderFromCoinsConcatenatesBits) {
  const std::vector<CoinResult> coins{CoinResult::kOne, CoinResult::kZero, CoinResult::kOne};
  const Outcome o = leader_from_coins(coins, 8);
  ASSERT_TRUE(o.valid());
  EXPECT_EQ(o.leader(), 0b101u);
}

TEST(Reductions, LeaderFromCoinsAllOutcomesReachable) {
  for (Value leader = 0; leader < 8; ++leader) {
    std::vector<CoinResult> coins;
    for (int b = 0; b < 3; ++b) {
      coins.push_back(((leader >> b) & 1) ? CoinResult::kOne : CoinResult::kZero);
    }
    const Outcome o = leader_from_coins(coins, 8);
    ASSERT_TRUE(o.valid());
    EXPECT_EQ(o.leader(), leader);
  }
}

TEST(Reductions, FailedTossFailsElection) {
  const std::vector<CoinResult> coins{CoinResult::kOne, CoinResult::kFail, CoinResult::kZero};
  EXPECT_TRUE(leader_from_coins(coins, 8).failed());
}

TEST(Reductions, BiasBoundsMatchTheorem81) {
  // Coin from eps-unbiased election on n processors: 1/2 + n*eps/2.
  EXPECT_DOUBLE_EQ(coin_bias_bound_from_election(0.0, 8), 0.5);
  EXPECT_DOUBLE_EQ(coin_bias_bound_from_election(0.01, 8), 0.54);
  // Election from log2(n) eps-unbiased coins: (1/2 + eps)^log2(n).
  EXPECT_DOUBLE_EQ(election_probability_bound_from_coins(0.0, 8), 0.125);
  EXPECT_NEAR(election_probability_bound_from_coins(0.1, 8), 0.216, 1e-9);
}

TEST(Reductions, EndToEndRoundTripUniformity) {
  // Simulate a perfectly fair election; derive coins; rebuild an election.
  // Exercises the independence assumption the paper flags explicitly.
  const int n = 8;
  std::vector<int> counts(n, 0);
  std::uint64_t state = 99;
  for (int trial = 0; trial < 8000; ++trial) {
    std::vector<CoinResult> coins;
    for (int b = 0; b < tosses_needed(n); ++b) {
      // Independent fair coins from a fair "election" parity.
      const Value leader = splitmix64(state) % n;
      coins.push_back(coin_from_leader(Outcome::elected(leader)));
    }
    const Outcome o = leader_from_coins(coins, n);
    ASSERT_TRUE(o.valid());
    ++counts[static_cast<int>(o.leader())];
  }
  for (const int c : counts) EXPECT_NEAR(c, 1000, 200);
}

}  // namespace
}  // namespace fle
