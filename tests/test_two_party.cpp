// Lemma F.2 (two-party dictatorship), the coalition solver, compound
// players (Lemma F.3's absorb step) and the Theorem 7.2 witness search.

#include <gtest/gtest.h>

#include "core/rng.h"
#include "trees/tree_protocols.h"
#include "trees/two_party.h"

namespace fle {
namespace {

TEST(GameTree, LeafAndChoiceConstruction) {
  std::vector<std::unique_ptr<GameNode>> kids;
  kids.push_back(GameTree::leaf(0));
  kids.push_back(GameTree::leaf(1));
  GameTree g(GameTree::choice(0, std::move(kids)), 2);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.depth(), 1);
  EXPECT_DOUBLE_EQ(g.uniform_value(), 0.5);
}

TEST(GameTree, OwnerOfLastMoveDictates) {
  // A single binary choice by player 0 with both outcomes available.
  std::vector<std::unique_ptr<GameNode>> kids;
  kids.push_back(GameTree::leaf(0));
  kids.push_back(GameTree::leaf(1));
  GameTree g(GameTree::choice(0, std::move(kids)), 2);
  EXPECT_TRUE(g.assures(0b01, 0));
  EXPECT_TRUE(g.assures(0b01, 1));
  EXPECT_FALSE(g.assures(0b10, 0));
  EXPECT_FALSE(g.assures(0b10, 1));
  const auto r = solve_two_party(g);
  EXPECT_TRUE(r.has_dictator());
}

class LemmaF2Property : public ::testing::TestWithParam<int> {};

TEST_P(LemmaF2Property, DisjunctionsHoldOnRandomProtocols) {
  const int depth = GetParam();
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto g = GameTree::random(2, depth, 3, seed);
    const auto r = solve_two_party(g);
    EXPECT_TRUE(r.disjunction_one()) << "seed=" << seed;  // A assures 0 or B assures 1
    EXPECT_TRUE(r.disjunction_two()) << "seed=" << seed;  // A assures 1 or B assures 0
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, LemmaF2Property, ::testing::Values(1, 2, 3, 5, 7));

TEST(LemmaF2, FairProtocolsStillHaveAssuringPlayer) {
  // Restricting attention to near-fair trees (uniform value ~ 1/2) — honest
  // executions toss a near-fair coin — some player still assures some
  // outcome: resilient fair coin toss between two parties is impossible.
  int fair_trees = 0;
  for (std::uint64_t seed = 0; seed < 2000 && fair_trees < 40; ++seed) {
    const auto g = GameTree::random(2, 4, 3, seed);
    if (std::abs(g.uniform_value() - 0.5) > 0.1) continue;
    ++fair_trees;
    const auto r = solve_two_party(g);
    EXPECT_TRUE(r.a_assures_0 || r.a_assures_1 || r.b_assures_0 || r.b_assures_1)
        << "seed=" << seed;
  }
  ASSERT_GE(fair_trees, 20);
}

TEST(GameTree, ExtractedStrategyForcesOutcome) {
  Xoshiro256 rng(13);
  int verified = 0;
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    const auto g = GameTree::random(2, 5, 3, seed);
    for (int bit = 0; bit <= 1; ++bit) {
      for (std::uint32_t mask : {0b01u, 0b10u}) {
        if (!g.assures(mask, bit)) continue;
        const auto strategy = g.assuring_strategy(mask, bit);
        ASSERT_FALSE(strategy.empty());
        // Replay against 20 random opposing behaviours.
        for (int trial = 0; trial < 20; ++trial) {
          std::vector<int> opp;
          for (int i = 0; i < 32; ++i) opp.push_back(static_cast<int>(rng.below(3)));
          EXPECT_EQ(g.play(mask, strategy, opp), bit)
              << "seed=" << seed << " mask=" << mask << " bit=" << bit;
        }
        ++verified;
      }
    }
  }
  EXPECT_GT(verified, 50);
}

TEST(GameTree, DeterminacyForCoalitions) {
  // Zermelo determinacy, coalition form: S assures b or V\S assures 1-b.
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const auto g = GameTree::random(4, 4, 3, seed);
    for (std::uint32_t mask = 1; mask < 15; ++mask) {
      const std::uint32_t comp = (~mask) & 0b1111u;
      for (int bit = 0; bit <= 1; ++bit) {
        EXPECT_TRUE(g.assures(mask, bit) || g.assures(comp, 1 - bit))
            << "seed=" << seed << " mask=" << mask << " bit=" << bit;
      }
    }
  }
}

TEST(GameTree, AbsorbCreatesCompoundPlayer) {
  // Lemma F.3's induction step: absorbing a player into another can only
  // help the compound.
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    const auto g = GameTree::random(3, 4, 3, seed);
    const auto absorbed = g.absorb(/*from=*/2, /*to=*/1);
    for (int bit = 0; bit <= 1; ++bit) {
      if (g.assures(0b010, bit)) {
        EXPECT_TRUE(absorbed.assures(0b010, bit));  // monotone in power
      }
      // The compound {1,2} in g equals player 1 in absorbed.
      EXPECT_EQ(g.assures(0b110, bit), absorbed.assures(0b010, bit)) << seed;
    }
  }
}

TEST(TreeProtocols, AlternatingXorLastMoverDictates) {
  for (int rounds : {1, 2, 3, 4, 5, 6}) {
    const auto g = alternating_xor_game(rounds);
    EXPECT_DOUBLE_EQ(g.uniform_value(), 0.5);  // honest protocol is fair
    const int last = (rounds - 1) % 2;
    const std::uint32_t last_mask = last == 0 ? 0b01u : 0b10u;
    const std::uint32_t first_mask = last == 0 ? 0b10u : 0b01u;
    EXPECT_TRUE(g.assures(last_mask, 0)) << rounds;
    EXPECT_TRUE(g.assures(last_mask, 1)) << rounds;
    EXPECT_FALSE(g.assures(first_mask, 0)) << rounds;
    EXPECT_FALSE(g.assures(first_mask, 1)) << rounds;
  }
}

TEST(TreeProtocols, XorLeafEdgeCompoundDictates) {
  {
    const auto g = xor_leaf_edge_game(/*leaf_last=*/false);
    // The rest-of-tree compound announces last: it dictates.
    EXPECT_TRUE(g.assures(0b10, 0));
    EXPECT_TRUE(g.assures(0b10, 1));
  }
  {
    const auto g = xor_leaf_edge_game(/*leaf_last=*/true);
    EXPECT_TRUE(g.assures(0b01, 0));
    EXPECT_TRUE(g.assures(0b01, 1));
  }
}

TEST(TreeProtocols, FindAssuringPartOnSimulatedRing) {
  // An 8-processor ring simulated by two arcs of 4; a game where processor 7
  // decides the final bit after a coin-style exchange.  The part containing
  // 7 (size 4 = k) assures both outcomes — the Theorem 7.2 witness.
  const auto sim = ring_as_two_arc_simulation(8);
  auto final_say = [] {
    std::vector<std::unique_ptr<GameNode>> kids;
    kids.push_back(GameTree::leaf(0));
    kids.push_back(GameTree::leaf(1));
    return GameTree::choice(7, std::move(kids));
  };
  std::vector<std::unique_ptr<GameNode>> outer;
  outer.push_back(final_say());
  outer.push_back(final_say());
  GameTree g(GameTree::choice(2, std::move(outer)), 8);
  const auto part = find_assuring_part(g, sim);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->part_index, sim.part_of[7]);
  const auto masks = part_masks(sim);
  EXPECT_TRUE(g.assures(masks[static_cast<std::size_t>(sim.part_of[7])], 0));
  EXPECT_TRUE(g.assures(masks[static_cast<std::size_t>(sim.part_of[7])], 1));
}

TEST(TreeProtocols, PartMasksPartitionProcessors) {
  const auto sim = ring_as_two_arc_simulation(10);
  const auto masks = part_masks(sim);
  std::uint32_t all = 0;
  for (const auto m : masks) {
    EXPECT_EQ(all & m, 0u);  // disjoint
    all |= m;
  }
  EXPECT_EQ(all, (1u << 10) - 1);
}

}  // namespace
}  // namespace fle
