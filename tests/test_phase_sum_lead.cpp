// PhaseSumLead (Appendix E.4): the sum-output strawman works honestly but
// falls to a constant-size (k = 4) coalition via the validation-value covert
// channel — the paper's motivation for the random function f.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "attacks/phase_sum_attack.h"
#include "protocols/phase_sum_lead.h"

namespace fle {
namespace {

TEST(PhaseSumLead, HonestElectsValidLeaderSmallRings) {
  for (int n = 2; n <= 20; ++n) {
    PhaseSumLeadProtocol protocol(n);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const Outcome o = run_honest(protocol, n, seed * 131 + 3);
      ASSERT_TRUE(o.valid()) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(PhaseSumLead, HonestOutcomeEqualsSumOfSecrets) {
  const int n = 9;
  PhaseSumLeadProtocol protocol(n);
  for (std::uint64_t seed : {4ull, 44ull, 444ull}) {
    Value expected = 0;
    for (ProcessorId p = 0; p < n; ++p) {
      RandomTape tape(seed, p);
      expected = (expected + tape.uniform(static_cast<Value>(n))) % n;
    }
    const Outcome o = run_honest(protocol, n, seed);
    ASSERT_TRUE(o.valid());
    EXPECT_EQ(o.leader(), expected);
  }
}

TEST(PhaseSumLead, HonestElectionIsUniform) {
  const int n = 8;
  PhaseSumLeadProtocol protocol(n);
  ExperimentConfig config;
  config.n = n;
  config.trials = 4000;
  const auto result = run_trials(protocol, nullptr, config);
  EXPECT_EQ(result.outcomes.fails(), 0u);
  EXPECT_LT(result.outcomes.chi_square_uniform(), chi_square_critical_999(n - 1));
}

class PhaseSumAttackTest : public ::testing::TestWithParam<int> {};

TEST_P(PhaseSumAttackTest, FourAdversariesControlAnyN) {
  const int n = GetParam();
  PhaseSumLeadProtocol protocol(n);
  const auto coalition = PhaseSumDeviation::placement(n);
  ASSERT_EQ(coalition.k(), 4);
  for (Value w : {Value{0}, static_cast<Value>(n / 2), static_cast<Value>(n - 1)}) {
    PhaseSumDeviation deviation(coalition, w, protocol);
    ExperimentConfig config;
    config.n = n;
    config.trials = 6;
    config.seed = 13 * n + w;
    const auto result = run_trials(protocol, &deviation, config);
    EXPECT_EQ(result.outcomes.count(w), result.outcomes.trials())
        << "n=" << n << " w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PhaseSumAttackTest,
                         ::testing::Values(24, 32, 50, 100, 128, 256));

TEST(PhaseSumAttack, ConstantCoalitionIndependentOfN) {
  // The point of E.4: k = 4 regardless of n (contrast with the sqrt(n)
  // requirement against PhaseAsyncLead's random f).
  for (int n : {40, 400}) {
    PhaseSumLeadProtocol protocol(n);
    PhaseSumDeviation deviation(PhaseSumDeviation::placement(n), 1, protocol);
    ExperimentConfig config;
    config.n = n;
    config.trials = 4;
    const auto result = run_trials(protocol, &deviation, config);
    EXPECT_EQ(result.outcomes.count(1), result.outcomes.trials()) << "n=" << n;
  }
}

TEST(PhaseSumAttack, RequiresExactlyFourMembers) {
  const int n = 64;
  PhaseSumLeadProtocol protocol(n);
  EXPECT_THROW(PhaseSumDeviation(Coalition::equally_spaced(n, 5), 0, protocol),
               std::invalid_argument);
}

TEST(PhaseSumAttack, RejectsTinyRings) {
  EXPECT_THROW(PhaseSumDeviation::placement(12), std::invalid_argument);
}

}  // namespace
}  // namespace fle
