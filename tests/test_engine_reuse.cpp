// PR-2 regression suite for the zero-allocation execution model
// (DESIGN.md §4): a reused engine — reset() between trials, strategies
// rebuilt in a StrategyArena — must produce bit-identical outcomes and
// execution stats to a freshly constructed engine, for the ring, graph and
// sync runtimes, honest and adversarial; and workspace reuse inside
// run_scenario's worker pool must leave the 1/4/8-thread determinism
// contract intact.

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "api/scenario.h"
#include "attacks/basic_single.h"
#include "attacks/deviation.h"
#include "attacks/graph_deviation.h"
#include "attacks/rushing.h"
#include "attacks/shamir_attacks.h"
#include "attacks/sync_attacks.h"
#include "protocols/alead_uni.h"
#include "protocols/basic_lead.h"
#include "protocols/shamir_lead.h"
#include "protocols/sync_lead.h"
#include "sim/arena.h"
#include "sim/engine.h"
#include "sim/graph_engine.h"
#include "sim/sync_engine.h"

namespace fle {
namespace {

constexpr int kTrials = 12;

// ---- ring ------------------------------------------------------------------

struct RingRun {
  Outcome outcome;
  ExecutionStats stats;
};

RingRun run_ring_fresh(const RingProtocol& protocol, const Deviation* deviation, int n,
                       std::uint64_t seed,
                       SchedulerKind kind = SchedulerKind::kRoundRobin) {
  EngineOptions options;
  options.scheduler_kind = kind;
  RingEngine engine(n, seed, std::move(options));
  StrategyArena arena;
  std::vector<RingStrategy*> profile;
  compose_profile_into(protocol, deviation, n, arena, profile);
  RingRun run;
  run.outcome = engine.run(std::span<RingStrategy* const>(profile));
  run.stats = engine.stats();
  return run;
}

void expect_ring_equal(const RingRun& fresh, const RingRun& reused, std::uint64_t seed) {
  EXPECT_EQ(fresh.outcome, reused.outcome) << "seed " << seed;
  EXPECT_EQ(fresh.stats.sent, reused.stats.sent) << "seed " << seed;
  EXPECT_EQ(fresh.stats.received, reused.stats.received) << "seed " << seed;
  EXPECT_EQ(fresh.stats.deliveries, reused.stats.deliveries) << "seed " << seed;
  EXPECT_EQ(fresh.stats.total_sent, reused.stats.total_sent) << "seed " << seed;
  EXPECT_EQ(fresh.stats.max_sync_gap, reused.stats.max_sync_gap) << "seed " << seed;
  EXPECT_EQ(fresh.stats.step_limit_hit, reused.stats.step_limit_hit) << "seed " << seed;
}

void check_ring_reuse(const RingProtocol& protocol, const Deviation* deviation, int n,
                      SchedulerKind kind = SchedulerKind::kRoundRobin) {
  EngineOptions options;
  options.scheduler_kind = kind;
  RingEngine reused(n, 1, std::move(options));
  StrategyArena arena;
  std::vector<RingStrategy*> profile;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    reused.reset(seed);
    arena.rewind();
    compose_profile_into(protocol, deviation, n, arena, profile);
    RingRun second;
    second.outcome = reused.run(std::span<RingStrategy* const>(profile));
    second.stats = reused.stats();
    expect_ring_equal(run_ring_fresh(protocol, deviation, n, seed, kind), second, seed);
  }
}

TEST(EngineReuse, RingHonestMatchesFresh) {
  BasicLeadProtocol basic;
  check_ring_reuse(basic, nullptr, 16);
  ALeadUniProtocol alead;
  check_ring_reuse(alead, nullptr, 16);
}

TEST(EngineReuse, RingAdversarialMatchesFresh) {
  BasicLeadProtocol basic;
  BasicSingleDeviation single(16, /*adversary=*/3, /*target=*/7);
  check_ring_reuse(basic, &single, 16);

  ALeadUniProtocol alead;
  RushingDeviation rushing(Coalition::equally_spaced(16, 7), /*target=*/5);
  check_ring_reuse(alead, &rushing, 16);
}

TEST(EngineReuse, RingRandomAndPrioritySchedulesMatchFresh) {
  // The random and priority fast paths reseed per reset(); reuse must agree
  // with fresh construction for them too.
  BasicLeadProtocol basic;
  check_ring_reuse(basic, nullptr, 16, SchedulerKind::kRandom);
  check_ring_reuse(basic, nullptr, 16, SchedulerKind::kPriority);
  BasicSingleDeviation single(16, /*adversary=*/3, /*target=*/7);
  check_ring_reuse(basic, &single, 16, SchedulerKind::kRandom);
}

TEST(EngineReuse, BuiltinFastPathMatchesSchedulerObjects) {
  // DESIGN.md §4: the engine's built-in schedule state restarts exactly as
  // make_scheduler(kind, n, seed) would build it.  Pin the contract by
  // running the devirtualized fast path against the virtual Scheduler
  // objects, stat for stat.
  BasicLeadProtocol protocol;
  const int n = 12;
  for (const SchedulerKind kind : {SchedulerKind::kRandom, SchedulerKind::kPriority}) {
    for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
      EngineOptions custom;
      custom.scheduler = make_scheduler(kind, n, seed);
      RingEngine reference(n, seed, std::move(custom));
      StrategyArena arena;
      std::vector<RingStrategy*> profile;
      compose_profile_into(protocol, static_cast<const Deviation*>(nullptr), n, arena,
                           profile);
      RingRun expected;
      expected.outcome = reference.run(std::span<RingStrategy* const>(profile));
      expected.stats = reference.stats();
      expect_ring_equal(expected, run_ring_fresh(protocol, nullptr, n, seed, kind), seed);
    }
  }
}

// ---- graph -----------------------------------------------------------------

struct GraphRun {
  Outcome outcome;
  GraphExecutionStats stats;
};

GraphRun run_graph_fresh(const GraphProtocol& protocol, const GraphDeviation* deviation,
                         int n, std::uint64_t seed) {
  GraphEngine engine(n, seed);
  StrategyArena arena;
  std::vector<GraphStrategy*> profile;
  compose_profile_into(protocol, deviation, n, arena, profile);
  GraphRun run;
  run.outcome = engine.run(std::span<GraphStrategy* const>(profile));
  run.stats = engine.stats();
  return run;
}

void check_graph_reuse(const GraphProtocol& protocol, const GraphDeviation* deviation,
                       int n) {
  GraphEngine reused(n, 1);
  StrategyArena arena;
  std::vector<GraphStrategy*> profile;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    reused.reset(seed);
    arena.rewind();
    compose_profile_into(protocol, deviation, n, arena, profile);
    const Outcome outcome = reused.run(std::span<GraphStrategy* const>(profile));
    const GraphRun fresh = run_graph_fresh(protocol, deviation, n, seed);
    EXPECT_EQ(fresh.outcome, outcome) << "seed " << seed;
    EXPECT_EQ(fresh.stats.sent, reused.stats().sent) << "seed " << seed;
    EXPECT_EQ(fresh.stats.received, reused.stats().received) << "seed " << seed;
    EXPECT_EQ(fresh.stats.total_sent, reused.stats().total_sent) << "seed " << seed;
    EXPECT_EQ(fresh.stats.deliveries, reused.stats().deliveries) << "seed " << seed;
  }
}

TEST(EngineReuse, GraphHonestAndAdversarialMatchFresh) {
  const int n = 8;
  ShamirLeadProtocol shamir(n);
  check_graph_reuse(shamir, nullptr, n);

  ShamirRushingDeviation rushing(Coalition::consecutive(n, n / 2 + 1), /*target=*/2, shamir);
  check_graph_reuse(shamir, &rushing, n);
}

// ---- sync ------------------------------------------------------------------

void check_sync_reuse(const SyncProtocol& protocol, const SyncDeviation* deviation, int n) {
  SyncEngine reused(n, 1);
  StrategyArena arena;
  std::vector<SyncStrategy*> profile;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    reused.reset(seed);
    arena.rewind();
    compose_profile_into(protocol, deviation, n, arena, profile);
    const Outcome outcome = reused.run(std::span<SyncStrategy* const>(profile));

    SyncEngine fresh(n, seed);
    StrategyArena fresh_arena;
    std::vector<SyncStrategy*> fresh_profile;
    compose_profile_into(protocol, deviation, n, fresh_arena, fresh_profile);
    const Outcome expected = fresh.run(std::span<SyncStrategy* const>(fresh_profile));

    EXPECT_EQ(expected, outcome) << "seed " << seed;
    EXPECT_EQ(fresh.stats().total_sent, reused.stats().total_sent) << "seed " << seed;
    EXPECT_EQ(fresh.stats().rounds, reused.stats().rounds) << "seed " << seed;
    EXPECT_EQ(fresh.stats().round_limit_hit, reused.stats().round_limit_hit)
        << "seed " << seed;
  }
}

TEST(EngineReuse, SyncHonestAndAdversarialMatchFresh) {
  const int n = 8;
  SyncBroadcastLeadProtocol broadcast;
  check_sync_reuse(broadcast, nullptr, n);

  SyncLateBroadcastDeviation late(Coalition::consecutive(n, 1, 1));
  check_sync_reuse(broadcast, &late, n);

  SyncBlindCollusionDeviation blind(Coalition::consecutive(n, 3, 1));
  check_sync_reuse(broadcast, &blind, n);
}

// ---- run_honest's thread-local workspace -----------------------------------

TEST(EngineReuse, RunHonestWorkspaceMatchesDedicatedEngine) {
  BasicLeadProtocol protocol;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    // Alternate shapes so the workspace is rebuilt and reused mid-sweep.
    const int n = seed % 2 == 0 ? 12 : 20;
    const RingRun fresh = run_ring_fresh(protocol, nullptr, n, seed);
    EXPECT_EQ(run_honest(protocol, n, seed), fresh.outcome) << "seed " << seed;
  }
}

// ---- scenario-level determinism across worker counts -----------------------

void expect_identical_counts(const ScenarioResult& a, const ScenarioResult& b, int domain) {
  ASSERT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.outcomes.fails(), b.outcomes.fails());
  for (Value j = 0; j < static_cast<Value>(domain); ++j) {
    EXPECT_EQ(a.outcomes.count(j), b.outcomes.count(j)) << "leader " << j;
  }
  EXPECT_DOUBLE_EQ(a.mean_messages, b.mean_messages);
  EXPECT_EQ(a.max_messages, b.max_messages);
}

void check_threads_148(ScenarioSpec spec) {
  auto one = spec;
  one.threads = 1;
  auto four = spec;
  four.threads = 4;
  auto eight = spec;
  eight.threads = 8;
  const ScenarioResult a = run_scenario(one);
  const ScenarioResult b = run_scenario(four);
  const ScenarioResult c = run_scenario(eight);
  expect_identical_counts(a, b, spec.n);
  expect_identical_counts(a, c, spec.n);
}

TEST(EngineReuse, RingScenarioDeterministicAcrossThreadCounts) {
  ScenarioSpec honest;
  honest.topology = TopologyKind::kRing;
  honest.protocol = "alead-uni";
  honest.n = 16;
  honest.trials = 96;
  honest.seed = 5;
  check_threads_148(honest);

  ScenarioSpec attacked = honest;
  attacked.protocol = "basic-lead";
  attacked.deviation = "basic-single";
  attacked.coalition = CoalitionSpec::consecutive(1, 3);
  attacked.target = 6;
  check_threads_148(attacked);

  ScenarioSpec random_schedule = honest;
  random_schedule.scheduler = SchedulerKind::kRandom;
  check_threads_148(random_schedule);
}

TEST(EngineReuse, GraphScenarioDeterministicAcrossThreadCounts) {
  ScenarioSpec honest;
  honest.topology = TopologyKind::kGraph;
  honest.protocol = "shamir-lead";
  honest.n = 8;
  honest.trials = 48;
  honest.seed = 5;
  check_threads_148(honest);

  ScenarioSpec attacked = honest;
  attacked.deviation = "shamir-rushing";
  attacked.coalition = CoalitionSpec::consecutive(5);
  attacked.target = 2;
  check_threads_148(attacked);
}

TEST(EngineReuse, SyncScenarioDeterministicAcrossThreadCounts) {
  ScenarioSpec honest;
  honest.topology = TopologyKind::kSync;
  honest.protocol = "sync-broadcast-lead";
  honest.n = 12;
  honest.trials = 96;
  honest.seed = 5;
  check_threads_148(honest);

  ScenarioSpec attacked = honest;
  attacked.deviation = "sync-blind-collusion";
  attacked.coalition = CoalitionSpec::consecutive(4);
  check_threads_148(attacked);
}

}  // namespace
}  // namespace fle
