// PhaseAsyncLead (Section 6 / Appendix E): honest correctness, message
// counts (2n^2), uniformity over f instances, parameter handling, and the
// phase-validation abort paths.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "protocols/phase_async_lead.h"
#include "sim/engine.h"

namespace fle {
namespace {

TEST(PhaseAsyncLead, HonestElectsValidLeaderSmallRings) {
  for (int n = 2; n <= 24; ++n) {
    PhaseAsyncLeadProtocol protocol(n, /*f_key=*/0xfeedull + n);
    for (std::uint64_t seed = 0; seed < 15; ++seed) {
      const Outcome o = run_honest(protocol, n, seed * 31 + 7);
      ASSERT_TRUE(o.valid()) << "n=" << n << " seed=" << seed;
      ASSERT_LT(o.leader(), static_cast<Value>(n));
    }
  }
}

TEST(PhaseAsyncLead, HonestMessageCountIsTwoNSquared) {
  for (int n : {2, 3, 5, 8, 21}) {
    PhaseAsyncLeadProtocol protocol(n, 0xabcull);
    RingEngine engine(n, 55, EngineOptions{});
    std::vector<std::unique_ptr<RingStrategy>> s;
    for (ProcessorId p = 0; p < n; ++p) s.push_back(protocol.make_strategy(p, n));
    const Outcome o = engine.run(std::move(s));
    ASSERT_TRUE(o.valid()) << "n=" << n;
    EXPECT_EQ(engine.stats().total_sent,
              2ull * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n))
        << "n=" << n;
    for (ProcessorId p = 0; p < n; ++p) {
      EXPECT_EQ(engine.stats().sent[static_cast<std::size_t>(p)],
                2ull * static_cast<std::uint64_t>(n));
    }
  }
}

TEST(PhaseAsyncLead, AllProcessorsComputeTheSameFInput) {
  // Outcome validity (all equal) across many runs is the integration-level
  // witness that every processor reconstructed identical (d-hat, v-hat).
  const int n = 13;
  PhaseAsyncLeadProtocol protocol(n, 0x9999ull);
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    ASSERT_TRUE(run_honest(protocol, n, seed).valid()) << seed;
  }
}

TEST(PhaseAsyncLead, HonestElectionIsNearUniformOverSeeds) {
  // With a fixed f, uniformity is over the secrets (the paper notes the
  // protocol is ~1/n fair for most f; our PRF family behaves accordingly).
  const int n = 8;
  PhaseAsyncLeadProtocol protocol(n, 0x1234'5678ull);
  ExperimentConfig config;
  config.n = n;
  config.trials = 4000;
  config.seed = 3;
  const auto result = run_trials(protocol, nullptr, config);
  EXPECT_EQ(result.outcomes.fails(), 0u);
  EXPECT_LT(result.outcomes.chi_square_uniform(), chi_square_critical_999(n - 1));
}

TEST(PhaseAsyncLead, DifferentFKeysGiveDifferentElections) {
  const int n = 16;
  PhaseAsyncLeadProtocol p1(n, 1);
  PhaseAsyncLeadProtocol p2(n, 2);
  int differing = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Outcome o1 = run_honest(p1, n, seed);
    const Outcome o2 = run_honest(p2, n, seed);
    ASSERT_TRUE(o1.valid());
    ASSERT_TRUE(o2.valid());
    if (o1.leader() != o2.leader()) ++differing;
  }
  EXPECT_GT(differing, 10);  // same secrets, different f => different leaders
}

TEST(PhaseAsyncLead, DefaultParametersFollowThePaper) {
  const auto params = PhaseParams::defaults(400);
  EXPECT_EQ(params.m, 2ull * 400 * 400);
  EXPECT_EQ(params.l, 200);  // ceil(10*sqrt(400)) = 200
  const auto small = PhaseParams::defaults(16);
  EXPECT_LT(small.l, 16);  // clamped so f keeps at least one validation input
  EXPECT_GE(small.l, 1);
}

TEST(PhaseAsyncLead, CustomSmallLWorks) {
  PhaseParams params = PhaseParams::defaults(10);
  params.l = 3;
  PhaseAsyncLeadProtocol protocol(params, 0x42ull);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    ASSERT_TRUE(run_honest(protocol, 10, seed).valid());
  }
}

TEST(PhaseAsyncLead, HonestExecutionIsTightlySynchronized) {
  for (int n : {8, 32, 64}) {
    PhaseAsyncLeadProtocol protocol(n, 0x777ull);
    RingEngine engine(n, 9);
    std::vector<std::unique_ptr<RingStrategy>> s;
    for (ProcessorId p = 0; p < n; ++p) s.push_back(protocol.make_strategy(p, n));
    ASSERT_TRUE(engine.run(std::move(s)).valid());
    EXPECT_LE(engine.stats().max_sync_gap, 3u) << "n=" << n;
  }
}

// --- abort paths -----------------------------------------------------------

/// Honest phase strategy except one validation forward is corrupted.
class CorruptValidationStrategy final : public RingStrategy {
 public:
  CorruptValidationStrategy(std::unique_ptr<RingStrategy> inner, int corrupt_at)
      : inner_(std::move(inner)), corrupt_at_(corrupt_at) {}

  void on_init(RingContext& ctx) override { inner_->on_init(ctx); }
  void on_receive(RingContext& ctx, Value v) override {
    ++events_;
    if (events_ == corrupt_at_) {
      inner_->on_receive(ctx, v + 1);  // corrupt what the inner code sees
      return;
    }
    inner_->on_receive(ctx, v);
  }

 private:
  std::unique_ptr<RingStrategy> inner_;
  int corrupt_at_;
  int events_ = 0;
};

TEST(PhaseAsyncLead, CorruptedTrafficFailsExecution) {
  const int n = 10;
  PhaseAsyncLeadProtocol protocol(n, 0xbeefull);
  // Corrupt different event indices at a middle processor; every corruption
  // must surface as FAIL (either a validator or the data return catches it).
  for (int corrupt_at : {1, 2, 3, 6, 9, 12, 15}) {
    RingEngine engine(n, 77 + corrupt_at);
    std::vector<std::unique_ptr<RingStrategy>> s;
    for (ProcessorId p = 0; p < n; ++p) {
      if (p == 5) {
        s.push_back(std::make_unique<CorruptValidationStrategy>(protocol.make_strategy(p, n),
                                                                corrupt_at));
      } else {
        s.push_back(protocol.make_strategy(p, n));
      }
    }
    EXPECT_TRUE(engine.run(std::move(s)).failed()) << "corrupt_at=" << corrupt_at;
  }
}

TEST(PhaseAsyncLead, SilentProcessorCausesFail) {
  const int n = 8;
  PhaseAsyncLeadProtocol protocol(n, 0x11ull);
  class Silent final : public RingStrategy {
    void on_receive(RingContext&, Value) override {}
  };
  RingEngine engine(n, 5);
  std::vector<std::unique_ptr<RingStrategy>> s;
  for (ProcessorId p = 0; p < n; ++p) {
    if (p == 3) {
      s.push_back(std::make_unique<Silent>());
    } else {
      s.push_back(protocol.make_strategy(p, n));
    }
  }
  const Outcome o = engine.run(std::move(s));
  EXPECT_TRUE(o.failed());
  EXPECT_FALSE(engine.stats().step_limit_hit);  // quiescence, not runaway
}

TEST(PhaseAsyncLead, RingSizeMismatchThrows) {
  PhaseAsyncLeadProtocol protocol(8, 1);
  EXPECT_THROW((void)protocol.make_strategy(0, 9), std::invalid_argument);
}

}  // namespace
}  // namespace fle
