// Graphs, k-simulated trees (Definition 7.1), the Figure 2 instance, and
// the Claim F.5 half-partition as a property over random connected graphs.

#include <gtest/gtest.h>

#include "trees/graph.h"
#include "trees/partition.h"
#include "trees/simulated_tree.h"

namespace fle {
namespace {

TEST(Graph, BasicInvariants) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_FALSE(g.connected());
  g.add_edge(2, 3);
  EXPECT_TRUE(g.connected());
  EXPECT_TRUE(g.is_tree());
  g.add_edge(3, 0);
  EXPECT_FALSE(g.is_tree());
}

TEST(Graph, DuplicateEdgesIgnored) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Graph, RejectsSelfLoopsAndBadVertices) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
}

TEST(Graph, FamiliesHaveExpectedShape) {
  EXPECT_TRUE(Graph::path(6).is_tree());
  EXPECT_TRUE(Graph::star(6).is_tree());
  EXPECT_FALSE(Graph::ring(6).is_tree());
  EXPECT_TRUE(Graph::ring(6).connected());
  EXPECT_EQ(Graph::complete(5).edge_count(), 10u);
}

TEST(Graph, RandomConnectedIsConnected) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto g = Graph::random_connected(20, 10, seed);
    EXPECT_TRUE(g.connected()) << seed;
  }
}

TEST(SimulatedTree, RingAsTwoArcsIsValid) {
  for (int n : {2, 3, 8, 15, 16}) {
    const auto sim = ring_as_two_arc_simulation(n);
    EXPECT_TRUE(is_valid_simulation(Graph::ring(n), sim, (n + 1) / 2)) << n;
    EXPECT_EQ(sim.width(), (n + 1) / 2);
    // And invalid for k below the width.
    if (n >= 4) {
      EXPECT_FALSE(is_valid_simulation(Graph::ring(n), sim, (n + 1) / 2 - 1));
    }
  }
}

TEST(SimulatedTree, Figure2ExampleIsA4SimulatedTree) {
  const auto ex = figure2_example();
  EXPECT_TRUE(is_valid_simulation(ex.graph, ex.simulation, 4));
  EXPECT_EQ(ex.simulation.width(), 4);
  EXPECT_TRUE(ex.graph.connected());
}

TEST(SimulatedTree, RejectsNonHomomorphism) {
  // Map two adjacent graph vertices to non-adjacent tree vertices.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  TreeSimulation sim{Graph(3), {0, 2, 2}};  // edge (0,1) -> tree pair (0,2)
  sim.tree.add_edge(0, 1);
  sim.tree.add_edge(1, 2);
  EXPECT_FALSE(is_valid_simulation(g, sim, 2));
}

TEST(SimulatedTree, RejectsDisconnectedPart) {
  Graph g = Graph::path(4);  // 0-1-2-3
  TreeSimulation sim{Graph(2), {0, 1, 0, 1}};  // parts {0,2} and {1,3}: disconnected
  sim.tree.add_edge(0, 1);
  EXPECT_FALSE(is_valid_simulation(g, sim, 2));
}

class HalfPartitionProperty : public ::testing::TestWithParam<int> {};

TEST_P(HalfPartitionProperty, ValidOnRandomConnectedGraphs) {
  const int n = GetParam();
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto g = Graph::random_connected(n, static_cast<int>(seed % 13), seed);
    const auto sim = half_partition(g);
    EXPECT_TRUE(is_valid_simulation(g, sim, (n + 1) / 2))
        << "n=" << n << " seed=" << seed;
    EXPECT_LE(sim.width(), (n + 1) / 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HalfPartitionProperty, ::testing::Values(2, 3, 5, 10, 24, 63));

TEST(HalfPartition, WorksOnNamedFamilies) {
  for (int n : {4, 9, 16}) {
    for (const auto& g : {Graph::ring(n), Graph::path(n), Graph::star(n), Graph::complete(n)}) {
      const auto sim = half_partition(g);
      EXPECT_TRUE(is_valid_simulation(g, sim, (n + 1) / 2));
    }
  }
}

TEST(HalfPartition, RejectsDisconnectedGraphs) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_THROW(half_partition(g), std::invalid_argument);
}

TEST(HalfPartition, TreeIsStarAroundB1) {
  const auto g = Graph::ring(10);
  const auto sim = half_partition(g);
  // B2.. are components of the complement of a BFS prefix: for a ring the
  // complement is an arc => exactly 2 parts.
  EXPECT_EQ(sim.tree.n(), 2);
  EXPECT_TRUE(sim.tree.is_tree());
}

}  // namespace
}  // namespace fle
