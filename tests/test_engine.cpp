// Deterministic engine semantics: FIFO delivery, quiescence, step bounds,
// outcome aggregation, instrumentation.

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace fle {
namespace {

/// Sends `burst` values at wake-up, then terminates on the first receive.
class BurstThenStop final : public RingStrategy {
 public:
  explicit BurstThenStop(int burst, Value output = 0) : burst_(burst), output_(output) {}
  void on_init(RingContext& ctx) override {
    for (int i = 0; i < burst_; ++i) ctx.send(static_cast<Value>(i));
  }
  void on_receive(RingContext& ctx, Value) override { ctx.terminate(output_); }

 private:
  int burst_;
  Value output_;
};

/// Forwards everything forever (never terminates).
class Forwarder final : public RingStrategy {
 public:
  void on_receive(RingContext& ctx, Value v) override { ctx.send(v); }
};

/// Records received values; terminates after `count` receives.
class Recorder final : public RingStrategy {
 public:
  Recorder(std::vector<Value>* sink, int count, Value output)
      : sink_(sink), count_(count), output_(output) {}
  void on_receive(RingContext& ctx, Value v) override {
    sink_->push_back(v);
    if (static_cast<int>(sink_->size()) >= count_) ctx.terminate(output_);
  }

 private:
  std::vector<Value>* sink_;
  int count_;
  Value output_;
};

TEST(Engine, FifoOrderOnLink) {
  std::vector<Value> received;
  RingEngine engine(2, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<BurstThenStop>(5, 0));  // p0 sends 0..4 to p1
  s.push_back(std::make_unique<Recorder>(&received, 5, 0));
  const Outcome o = engine.run(std::move(s));
  ASSERT_EQ(received, (std::vector<Value>{0, 1, 2, 3, 4}));
  // p1 terminated with 0; p0 terminated on the message p1 sent? p1 sent
  // nothing, so p0 never terminates => FAIL.
  EXPECT_TRUE(o.failed());
}

TEST(Engine, OutcomeValidWhenAllAgree) {
  class Agree final : public RingStrategy {
   public:
    void on_init(RingContext& ctx) override { ctx.send(0); }
    void on_receive(RingContext& ctx, Value) override { ctx.terminate(2); }
  };
  RingEngine engine(3, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  for (int i = 0; i < 3; ++i) s.push_back(std::make_unique<Agree>());
  EXPECT_EQ(engine.run(std::move(s)), Outcome::elected(2));
}

TEST(Engine, OutcomeFailsOnDisagreement) {
  class OutputOwnId final : public RingStrategy {
   public:
    void on_init(RingContext& ctx) override { ctx.send(0); }
    void on_receive(RingContext& ctx, Value) override {
      ctx.terminate(static_cast<Value>(ctx.id()));
    }
  };
  RingEngine engine(3, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  for (int i = 0; i < 3; ++i) s.push_back(std::make_unique<OutputOwnId>());
  EXPECT_TRUE(engine.run(std::move(s)).failed());
}

TEST(Engine, OutcomeFailsOnAbort) {
  class Aborter final : public RingStrategy {
   public:
    void on_init(RingContext& ctx) override { ctx.send(0); }
    void on_receive(RingContext& ctx, Value) override { ctx.abort(); }
  };
  RingEngine engine(2, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<Aborter>());
  s.push_back(std::make_unique<Aborter>());
  EXPECT_TRUE(engine.run(std::move(s)).failed());
}

TEST(Engine, OutcomeFailsOnOutOfRangeOutput) {
  class BigOutput final : public RingStrategy {
   public:
    void on_init(RingContext& ctx) override { ctx.send(0); }
    void on_receive(RingContext& ctx, Value) override {
      ctx.terminate(static_cast<Value>(ctx.ring_size()) + 5);
    }
  };
  RingEngine engine(2, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<BigOutput>());
  s.push_back(std::make_unique<BigOutput>());
  EXPECT_TRUE(engine.run(std::move(s)).failed());
}

TEST(Engine, QuiescenceWithoutTerminationFails) {
  RingEngine engine(2, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<Forwarder>());  // nobody ever sends first
  s.push_back(std::make_unique<Forwarder>());
  const Outcome o = engine.run(std::move(s));
  EXPECT_TRUE(o.failed());
  EXPECT_EQ(engine.stats().deliveries, 0u);
  EXPECT_FALSE(engine.stats().step_limit_hit);
}

TEST(Engine, StepLimitStopsInfiniteForwarding) {
  EngineOptions options;
  options.step_limit = 500;
  RingEngine engine(2, 1, std::move(options));
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<BurstThenStop>(1));  // seeds one message...
  s.push_back(std::make_unique<Forwarder>());       // ...that circulates forever
  // p0 terminates on first receive; p1 keeps forwarding to p0 whose inbox
  // drains into a terminated processor; execution quiesces... unless p0's
  // termination happens late.  Either way the engine must stop.
  const Outcome o = engine.run(std::move(s));
  EXPECT_TRUE(o.failed());
}

TEST(Engine, StepLimitHitFlagOnRunaway) {
  class PingPong final : public RingStrategy {
   public:
    void on_init(RingContext& ctx) override { ctx.send(0); }
    void on_receive(RingContext& ctx, Value v) override { ctx.send(v + 1); }
  };
  EngineOptions options;
  options.step_limit = 100;
  RingEngine engine(2, 1, std::move(options));
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<PingPong>());
  s.push_back(std::make_unique<PingPong>());
  const Outcome o = engine.run(std::move(s));
  EXPECT_TRUE(o.failed());
  EXPECT_TRUE(engine.stats().step_limit_hit);
  EXPECT_EQ(engine.stats().deliveries, 100u);
}

TEST(Engine, MessagesToTerminatedProcessorsVanish) {
  // p1 acks once then terminates; p0's remaining burst messages to the
  // terminated p1 must vanish without disturbing the outcome.
  class AckOnceThenStop final : public RingStrategy {
   public:
    void on_receive(RingContext& ctx, Value) override {
      ctx.send(0);
      ctx.terminate(1);
    }
  };
  RingEngine engine(2, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<BurstThenStop>(3, 1));  // p0: sends 3, stops on recv
  s.push_back(std::make_unique<AckOnceThenStop>());    // p1: ack, stop after 1
  const Outcome o = engine.run(std::move(s));
  EXPECT_TRUE(o.valid());  // both terminated with output 1
  EXPECT_EQ(o.leader(), 1u);
  EXPECT_EQ(engine.stats().received[1], 1u);  // 2 burst messages vanished
}

TEST(Engine, SendAfterTerminateThrows) {
  class Bad final : public RingStrategy {
   public:
    void on_init(RingContext& ctx) override {
      ctx.terminate(0);
      ctx.send(1);  // illegal
    }
    void on_receive(RingContext&, Value) override {}
  };
  RingEngine engine(2, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<Bad>());
  s.push_back(std::make_unique<Forwarder>());
  EXPECT_THROW(engine.run(std::move(s)), std::logic_error);
}

TEST(Engine, DoubleTerminateThrows) {
  class Bad final : public RingStrategy {
   public:
    void on_init(RingContext& ctx) override {
      ctx.terminate(0);
      ctx.terminate(0);
    }
    void on_receive(RingContext&, Value) override {}
  };
  RingEngine engine(2, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<Bad>());
  s.push_back(std::make_unique<Forwarder>());
  EXPECT_THROW(engine.run(std::move(s)), std::logic_error);
}

TEST(Engine, RejectsTooSmallRings) {
  EXPECT_THROW(RingEngine(1, 0), std::invalid_argument);
}

TEST(Engine, RejectsWrongStrategyCount) {
  RingEngine engine(3, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<Forwarder>());
  EXPECT_THROW(engine.run(std::move(s)), std::invalid_argument);
}

TEST(Engine, ObserverSeesEveryDelivery) {
  std::uint64_t observed = 0;
  EngineOptions options;
  options.observer = [&](std::uint64_t step, ProcessorId, Value,
                         std::span<const std::uint64_t>) {
    observed = step;
  };
  RingEngine engine(2, 1, std::move(options));
  std::vector<Value> received;
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<BurstThenStop>(4, 0));
  s.push_back(std::make_unique<Recorder>(&received, 4, 0));
  (void)engine.run(std::move(s));
  EXPECT_EQ(observed, engine.stats().deliveries);
  EXPECT_GE(observed, 4u);
}

TEST(Engine, SyncGapTracksSpread) {
  // p0 bursts 10 messages while p1 answers nothing: gap 10.
  RingEngine engine(2, 1);
  std::vector<Value> received;
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<BurstThenStop>(10, 0));
  s.push_back(std::make_unique<Recorder>(&received, 10, 0));
  (void)engine.run(std::move(s));
  EXPECT_EQ(engine.stats().max_sync_gap, 10u);
}

}  // namespace
}  // namespace fle
