// The unified execution-transcript subsystem (sim/transcript.h, DESIGN.md
// §7): codec round trips, record -> replay equality on all four runtime
// families at 1/4/8 workers, fresh-vs-reused engine capture, ring schedule
// re-drive (including divergence detection), turn-game action re-drive, and
// sharded-vs-monolithic capture merging.

#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <vector>

#include "api/registry.h"
#include "api/scenario.h"
#include "attacks/deviation.h"
#include "fullinfo/baton.h"
#include "fullinfo/turn_game.h"
#include "protocols/basic_lead.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "sim/transcript.h"
#include "verify/shard.h"

namespace fle {
namespace {

// ---- the stream itself ------------------------------------------------------

TEST(Transcript, DigestAndFullModesAgree) {
  ExecutionTranscript full(TranscriptMode::kFull);
  ExecutionTranscript digest(TranscriptMode::kDigest);
  for (std::uint64_t i = 0; i < 50; ++i) {
    full.delivery(i, i % 7, i * 3);
    digest.delivery(i, i % 7, i * 3);
  }
  full.decision(3, false, 5);
  digest.decision(3, false, 5);
  EXPECT_EQ(full.digest(), digest.digest());
  EXPECT_EQ(full.size(), digest.size());
  EXPECT_TRUE(full == digest);
  EXPECT_EQ(full.events().size(), 51u);
  EXPECT_TRUE(digest.events().empty());
}

TEST(Transcript, OrderSensitivity) {
  ExecutionTranscript a;
  ExecutionTranscript b;
  a.delivery(1, 2, 3);
  a.delivery(4, 5, 6);
  b.delivery(4, 5, 6);
  b.delivery(1, 2, 3);
  EXPECT_NE(a.digest(), b.digest());
  EXPECT_FALSE(a == b);
}

TEST(Transcript, ClearKeepsCapacityAndRestartsTheDigest) {
  ExecutionTranscript t;
  t.delivery(1, 2, 3);
  const std::uint64_t first = t.digest();
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  t.delivery(1, 2, 3);
  EXPECT_EQ(t.digest(), first);
}

TEST(Transcript, CodecRoundTripsEveryEventKind) {
  ExecutionTranscript t;
  t.delivery(0, 0, 0);
  t.delivery(1u << 20, 97, ~0ull);  // multi-byte varints
  t.turn(7, 3, 2);
  t.phase(4, 12);
  t.decision(5, true, 0);
  const ExecutionTranscript decoded = ExecutionTranscript::decode(t.encode());
  EXPECT_TRUE(t == decoded);
  EXPECT_EQ(decoded.digest(), t.digest());
  ASSERT_EQ(decoded.events().size(), t.events().size());
  for (std::size_t i = 0; i < t.events().size(); ++i) {
    EXPECT_TRUE(t.events()[i] == decoded.events()[i]);
  }
}

TEST(Transcript, EmptyTranscriptRoundTrips) {
  ExecutionTranscript t;
  const ExecutionTranscript decoded = ExecutionTranscript::decode(t.encode());
  EXPECT_TRUE(t == decoded);
  EXPECT_EQ(decoded.size(), 0u);
}

TEST(Transcript, DecodeRejectsMalformedBuffers) {
  ExecutionTranscript t;
  t.delivery(1, 2, 3);
  std::vector<std::uint8_t> bytes = t.encode();
  EXPECT_THROW(ExecutionTranscript::decode(std::span<const std::uint8_t>(bytes).first(2)),
               std::invalid_argument);  // truncated magic
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(ExecutionTranscript::decode(bad_magic), std::invalid_argument);
  std::vector<std::uint8_t> truncated = bytes;
  truncated.pop_back();
  EXPECT_THROW(ExecutionTranscript::decode(truncated), std::invalid_argument);
  std::vector<std::uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(ExecutionTranscript::decode(trailing), std::invalid_argument);
  EXPECT_THROW(ExecutionTranscript(TranscriptMode::kDigest).encode(), std::logic_error);
}

TEST(Transcript, DigestMatchesTheTraceDigestConsumer) {
  // TraceDigest is a thin consumer of the same stream: an engine-attached
  // transcript and the observer-driven digest must fingerprint a delivery
  // sequence identically.
  const int n = 16;
  BasicLeadProtocol protocol;

  TraceDigest observer_digest;
  EngineOptions options;
  options.observer = observer_digest.observer();
  RingEngine observed(n, 42, std::move(options));
  ExecutionTranscript recorded;
  observed.set_transcript(&recorded);
  ASSERT_TRUE(observed.run(compose_strategies(protocol, nullptr, n)).valid());

  // The engine-recorded stream adds decision events; its delivery prefix
  // must fold to what the observer saw.
  ExecutionTranscript deliveries_only(TranscriptMode::kDigest);
  for (const TranscriptEvent& e : recorded.events()) {
    if (e.kind == TranscriptEventKind::kDelivery) deliveries_only.record(e.kind, e.a, e.b, e.c);
  }
  EXPECT_EQ(deliveries_only.digest(), observer_digest.value());
  EXPECT_EQ(deliveries_only.size(), observer_digest.deliveries());
}

// ---- record -> replay across the four families ------------------------------

ScenarioSpec family_spec(TopologyKind topology, const char* protocol, int n) {
  ScenarioSpec spec;
  spec.topology = topology;
  spec.protocol = protocol;
  spec.n = n;
  spec.trials = 24;
  spec.seed = 2026;
  spec.record_transcripts = true;
  return spec;
}

void expect_equal_transcripts(const ScenarioResult& a, const ScenarioResult& b) {
  ASSERT_EQ(a.per_trial_transcript.size(), b.per_trial_transcript.size());
  for (std::size_t t = 0; t < a.per_trial_transcript.size(); ++t) {
    const Replayer replayer(a.per_trial_transcript[t]);
    const auto divergence = replayer.diff(b.per_trial_transcript[t]);
    EXPECT_FALSE(divergence.has_value())
        << "trial " << t << ": " << (divergence ? divergence->what : "");
  }
}

class TranscriptFamilies
    : public ::testing::TestWithParam<std::pair<TopologyKind, const char*>> {};

TEST_P(TranscriptFamilies, CaptureIsWorkerCountInvariant) {
  const auto [topology, protocol] = GetParam();
  ScenarioSpec spec = family_spec(topology, protocol, 8);
  spec.threads = 1;
  const ScenarioResult one = run_scenario(spec);
  ASSERT_EQ(one.per_trial_transcript.size(), spec.trials);
  EXPECT_TRUE(one.transcripts_recorded);
  for (const ExecutionTranscript& t : one.per_trial_transcript) {
    EXPECT_GT(t.size(), 0u);
  }
  for (const int threads : {4, 8}) {
    ScenarioSpec rerun = spec;
    rerun.threads = threads;
    const ScenarioResult r = run_scenario(rerun);
    SCOPED_TRACE(threads);
    expect_equal_transcripts(one, r);
  }
}

TEST_P(TranscriptFamilies, ShardedCaptureMergesIntoTheMonolithicOne) {
  const auto [topology, protocol] = GetParam();
  const ScenarioSpec spec = family_spec(topology, protocol, 6);
  const ScenarioResult whole = run_scenario(spec);

  ScenarioSpec first_half = spec;
  first_half.trial_count = spec.trials / 2;
  ScenarioSpec second_half = spec;
  second_half.trial_offset = spec.trials / 2;
  ScenarioResult merged = run_scenario(first_half);
  merged.merge(run_scenario(second_half));

  ASSERT_EQ(merged.trials, whole.trials);
  expect_equal_transcripts(whole, merged);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, TranscriptFamilies,
    ::testing::Values(std::pair<TopologyKind, const char*>{TopologyKind::kRing, "alead-uni"},
                      std::pair<TopologyKind, const char*>{TopologyKind::kGraph,
                                                           "shamir-lead"},
                      std::pair<TopologyKind, const char*>{TopologyKind::kSync,
                                                           "sync-ring-lead"},
                      std::pair<TopologyKind, const char*>{TopologyKind::kFullInfo, "baton"},
                      std::pair<TopologyKind, const char*>{TopologyKind::kTree,
                                                           "alternating-xor"}));

TEST(TranscriptScenario, FreshEngineMatchesTheReusedWorkspaceCapture) {
  // run_scenario records through per-worker reused engines; a fresh engine
  // per trial must produce the identical stream (the §4 reuse contract
  // extended to transcripts).
  ScenarioSpec spec = family_spec(TopologyKind::kRing, "basic-lead", 12);
  spec.trials = 8;
  const ScenarioResult reused = run_scenario(spec);
  ASSERT_EQ(reused.per_trial_transcript.size(), 8u);

  BasicLeadProtocol protocol;
  for (std::size_t t = 0; t < spec.trials; ++t) {
    EngineOptions options;
    options.step_limit = scenario_ring_step_limit(spec, protocol);
    RingEngine fresh(spec.n, scenario_trial_seed(spec.seed, t), std::move(options));
    ExecutionTranscript transcript;
    fresh.set_transcript(&transcript);
    ASSERT_TRUE(fresh.run(compose_strategies(protocol, nullptr, spec.n)).valid());
    const auto divergence = Replayer(reused.per_trial_transcript[t]).diff(transcript);
    EXPECT_FALSE(divergence.has_value())
        << "trial " << t << ": " << (divergence ? divergence->what : "");
  }
}

TEST(TranscriptScenario, RecordingOffLeavesNoTranscripts) {
  ScenarioSpec spec = family_spec(TopologyKind::kRing, "basic-lead", 8);
  spec.record_transcripts = false;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_FALSE(r.transcripts_recorded);
  EXPECT_TRUE(r.per_trial_transcript.empty());
}

TEST(TranscriptScenario, ThreadedCaptureIsRejectedWithTheFieldName) {
  ScenarioSpec spec = family_spec(TopologyKind::kThreaded, "basic-lead", 4);
  try {
    run_scenario(spec);
    FAIL() << "threaded transcript capture must be rejected";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("record_transcripts"), std::string::npos);
  }
}

TEST(TranscriptScenario, MergeRefusesMixedRecordingModes) {
  ScenarioSpec recorded = family_spec(TopologyKind::kRing, "basic-lead", 6);
  recorded.trial_count = recorded.trials / 2;
  ScenarioSpec bare = recorded;
  bare.record_transcripts = false;
  bare.trial_offset = recorded.trials / 2;
  bare.trial_count = 0;
  ScenarioResult merged = run_scenario(recorded);
  EXPECT_THROW(merged.merge(run_scenario(bare)), std::invalid_argument);
}

// ---- re-driving recordings --------------------------------------------------

TEST(TranscriptReplay, RingScheduleRedriveReproducesTheExecution) {
  const int n = 16;
  const std::uint64_t seed = 99;
  BasicLeadProtocol protocol;

  // Record under the random scheduler — the recording pins the schedule.
  ExecutionTranscript recorded;
  EngineOptions record_options;
  record_options.scheduler_kind = SchedulerKind::kRandom;
  RingEngine recorder(n, seed, std::move(record_options));
  recorder.set_transcript(&recorded);
  const Outcome original = recorder.run(compose_strategies(protocol, nullptr, n));
  ASSERT_TRUE(original.valid());

  const Replayer replayer(recorded);
  ExecutionTranscript replayed;
  EngineOptions replay_options;
  replay_options.scheduler = replayer.ring_schedule();
  RingEngine redriven(n, seed, std::move(replay_options));
  redriven.set_transcript(&replayed);
  const Outcome outcome = redriven.run(compose_strategies(protocol, nullptr, n));
  EXPECT_EQ(outcome, original);
  EXPECT_FALSE(replayer.diff(replayed).has_value());
}

TEST(TranscriptReplay, RingRedriveDetectsATamperedSchedule) {
  const int n = 12;
  BasicLeadProtocol protocol;
  ExecutionTranscript recorded;
  RingEngine recorder(n, 7);
  recorder.set_transcript(&recorded);
  ASSERT_TRUE(recorder.run(compose_strategies(protocol, nullptr, n)).valid());

  // Corrupt one delivery's receiver: the re-drive must either throw (the
  // recorded receiver has nothing pending) or produce a diverging stream.
  ExecutionTranscript tampered;
  bool flipped = false;
  for (const TranscriptEvent& e : recorded.events()) {
    if (!flipped && e.kind == TranscriptEventKind::kDelivery && e.a > 4) {
      tampered.record(e.kind, e.a, (e.b + 1) % static_cast<std::uint64_t>(n), e.c);
      flipped = true;
    } else {
      tampered.record(e.kind, e.a, e.b, e.c);
    }
  }
  ASSERT_TRUE(flipped);

  const Replayer replayer(tampered);
  ExecutionTranscript replayed;
  EngineOptions options;
  options.scheduler = replayer.ring_schedule();
  RingEngine redriven(n, 7, std::move(options));
  redriven.set_transcript(&replayed);
  bool diverged = false;
  try {
    redriven.run(compose_strategies(protocol, nullptr, n));
    diverged = replayer.diff(replayed).has_value();
  } catch (const std::runtime_error&) {
    diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(TranscriptReplay, TurnGameRedriveReproducesTheOutcome) {
  const BatonGame game(8);
  Xoshiro256 rng(5);
  ExecutionTranscript recorded;
  const Value outcome = play_turn_game(game, {}, nullptr, rng, &recorded);
  EXPECT_GT(recorded.size(), 0u);
  EXPECT_EQ(replay_turn_game(game, recorded.events()), outcome);
}

TEST(TranscriptReplay, TurnGameRedriveDetectsDivergence) {
  const BatonGame game(8);
  Xoshiro256 rng(6);
  ExecutionTranscript recorded;
  play_turn_game(game, {}, nullptr, rng, &recorded);

  // A different game shape must be caught: replay against a smaller game.
  const BatonGame smaller(4);
  EXPECT_THROW(replay_turn_game(smaller, recorded.events()), std::runtime_error);

  // A recording whose outcome was tampered with must be caught too.
  ExecutionTranscript tampered;
  for (const TranscriptEvent& e : recorded.events()) {
    if (e.kind == TranscriptEventKind::kDecision) {
      tampered.record(e.kind, e.a, e.b, e.c + 1);
    } else {
      tampered.record(e.kind, e.a, e.b, e.c);
    }
  }
  EXPECT_THROW(replay_turn_game(game, tampered.events()), std::runtime_error);
}

// ---- shard-row round trip ---------------------------------------------------

TEST(TranscriptShard, RowsCarryTranscriptsThroughTheJsonlBoundary) {
  ScenarioSpec spec = family_spec(TopologyKind::kRing, "alead-uni", 6);
  spec.trials = 5;
  verify::ShardRow row;
  row.case_index = 3;
  row.spec_line = "transcript shard row";
  row.result = run_scenario(spec);
  const verify::ShardRow parsed = verify::parse_shard_row(verify::format_shard_row(row));
  ASSERT_TRUE(parsed.result.transcripts_recorded);
  ASSERT_EQ(parsed.result.per_trial_transcript.size(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_TRUE(parsed.result.per_trial_transcript[t] ==
                row.result.per_trial_transcript[t]);
  }
}

}  // namespace
}  // namespace fle
