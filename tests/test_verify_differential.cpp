// Differential runtime checking (src/verify/differential.h): runtimes that
// claim to realize the same game must agree — exactly per trial between
// ring and threaded, exactly across oblivious schedules, exactly between a
// fresh and a reused engine's traces, and statistically across protocol
// families the paper proves uniform.

#include <gtest/gtest.h>

#include <stdexcept>

#include "verify/differential.h"

namespace fle::verify {
namespace {

ScenarioSpec ring(const char* protocol, int n, std::size_t trials) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.n = n;
  spec.trials = trials;
  spec.seed = 21;
  return spec;
}

TEST(DifferentialExact, RingAndThreadedAgreePerTrial) {
  const CheckResult r = check_differential_exact(ring("alead-uni", 8, 12),
                                                 TopologyKind::kRing,
                                                 TopologyKind::kThreaded);
  EXPECT_TRUE(r.passed) << r.detail;
  EXPECT_NE(r.detail.find("identical"), std::string::npos);
}

TEST(DifferentialExact, DeviatedProfilesAgreeToo) {
  ScenarioSpec spec = ring("basic-lead", 8, 10);
  spec.deviation = "basic-single";
  spec.coalition = CoalitionSpec::consecutive(1, 3);
  spec.target = 6;
  const CheckResult r =
      check_differential_exact(spec, TopologyKind::kRing, TopologyKind::kThreaded);
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(SchedulerInvariance, AllObliviousSchedulesAgree) {
  const CheckResult r = check_scheduler_invariance(ring("phase-async-lead", 12, 10));
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(SchedulerInvariance, RejectsNonRingSpecs) {
  ScenarioSpec spec = ring("shamir-lead", 8, 4);
  spec.topology = TopologyKind::kGraph;
  EXPECT_THROW(check_scheduler_invariance(spec), std::invalid_argument);
}

TEST(TraceDeterminism, ReusedEngineReplaysFreshTraces) {
  const CheckResult r = check_trace_determinism(ring("alead-uni", 8, 8), 6);
  EXPECT_TRUE(r.passed) << r.detail;
  const CheckResult deviated = [&] {
    ScenarioSpec spec = ring("basic-lead", 8, 8);
    spec.deviation = "basic-single";
    spec.coalition = CoalitionSpec::consecutive(1, 2);
    spec.target = 5;
    return check_trace_determinism(spec, 6);
  }();
  EXPECT_TRUE(deviated.passed) << deviated.detail;
}

TEST(DifferentialDistribution, UniformProtocolsAreIndistinguishable) {
  // Two independent honest samples of the same uniform election.
  ScenarioSpec a = ring("alead-uni", 8, 900);
  ScenarioSpec b = a;
  b.seed = a.seed + 7919;
  const CheckResult r = check_differential_distribution(a, b);
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(DifferentialDistribution, CrossRuntimeUniformityHolds) {
  ScenarioSpec a = ring("alead-uni", 8, 900);
  ScenarioSpec b;
  b.topology = TopologyKind::kSync;
  b.protocol = "sync-ring-lead";
  b.n = 8;
  b.trials = 900;
  b.seed = 4242;
  const CheckResult r = check_differential_distribution(a, b);
  EXPECT_TRUE(r.passed) << r.detail;
}

TEST(DifferentialDistribution, FlagsARiggedSample) {
  // Honest uniform vs a single-adversary takeover: trivially separable.
  ScenarioSpec honest = ring("basic-lead", 8, 400);
  ScenarioSpec rigged = honest;
  rigged.deviation = "basic-single";
  rigged.coalition = CoalitionSpec::consecutive(1, 3);
  rigged.target = 6;
  rigged.seed = honest.seed + 1;
  const CheckResult r = check_differential_distribution(honest, rigged);
  EXPECT_FALSE(r.passed) << r.detail;
}

}  // namespace
}  // namespace fle::verify
