// A-LEADuni (Section 3 / Appendix A): honest correctness, uniformity,
// validation aborts, and the consecutive-coalition observations.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "attacks/coalition.h"
#include "protocols/alead_uni.h"
#include "sim/engine.h"

namespace fle {
namespace {

TEST(ALeadUni, HonestElectsValidLeaderSmallRings) {
  ALeadUniProtocol protocol;
  for (int n = 2; n <= 24; ++n) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      const Outcome o = run_honest(protocol, n, seed * 1009 + 5);
      ASSERT_TRUE(o.valid()) << "n=" << n << " seed=" << seed;
      ASSERT_LT(o.leader(), static_cast<Value>(n));
    }
  }
}

TEST(ALeadUni, HonestMessageCountIsNSquared) {
  ALeadUniProtocol protocol;
  for (int n : {2, 3, 4, 9, 17, 40}) {
    RingEngine engine(n, 123);
    std::vector<std::unique_ptr<RingStrategy>> s;
    for (ProcessorId p = 0; p < n; ++p) s.push_back(protocol.make_strategy(p, n));
    const Outcome o = engine.run(std::move(s));
    ASSERT_TRUE(o.valid()) << "n=" << n;
    EXPECT_EQ(engine.stats().total_sent,
              static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n));
  }
}

TEST(ALeadUni, HonestElectionIsUniform) {
  ALeadUniProtocol protocol;
  const int n = 6;
  ExperimentConfig config;
  config.n = n;
  config.trials = 6000;
  config.seed = 11;
  const auto result = run_trials(protocol, nullptr, config);
  EXPECT_EQ(result.outcomes.fails(), 0u);
  EXPECT_LT(result.outcomes.chi_square_uniform(), chi_square_critical_999(n - 1));
}

TEST(ALeadUni, HonestExecutionIsOneSynchronized) {
  // Without adversaries A-LEADuni simulates lock-step rounds: the sync gap
  // stays at most 1 (the origin leads each round by one send).
  ALeadUniProtocol protocol;
  for (int n : {4, 16, 64}) {
    RingEngine engine(n, 321);
    std::vector<std::unique_ptr<RingStrategy>> s;
    for (ProcessorId p = 0; p < n; ++p) s.push_back(protocol.make_strategy(p, n));
    ASSERT_TRUE(engine.run(std::move(s)).valid());
    EXPECT_LE(engine.stats().max_sync_gap, 1u) << "n=" << n;
  }
}

TEST(ALeadUni, AllOutputsAgreeWithSumOfSecrets) {
  // White-box: run and check that the elected leader equals the sum of all
  // drawn secrets mod n, reproducing the protocol's defining equation.
  const int n = 7;
  ALeadUniProtocol protocol;
  for (std::uint64_t seed : {1ull, 99ull, 777ull}) {
    // Recompute the secrets the strategies will draw from their tapes.
    Value expected = 0;
    for (ProcessorId p = 0; p < n; ++p) {
      RandomTape tape(seed, p);
      expected = (expected + tape.uniform(static_cast<Value>(n))) % n;
    }
    const Outcome o = run_honest(protocol, n, seed);
    ASSERT_TRUE(o.valid());
    EXPECT_EQ(o.leader(), expected) << "seed=" << seed;
  }
}

// A deviating processor that swaps one value must trigger an abort
// somewhere: its own secret cannot come back to everyone consistently.
class SwapFirstForwardStrategy final : public RingStrategy {
 public:
  void on_init(RingContext& ctx) override {
    d_ = ctx.tape().uniform(static_cast<Value>(ctx.ring_size()));
    buffer_ = d_;
  }
  void on_receive(RingContext& ctx, Value v) override {
    const auto n = static_cast<Value>(ctx.ring_size());
    v %= n;
    // Deviation: replace the first forwarded value with garbage, then play
    // honestly.
    if (count_ == 0) {
      ctx.send((buffer_ + 1) % n);
    } else {
      ctx.send(buffer_);
    }
    buffer_ = v;
    ++count_;
    sum_ = (sum_ + v) % n;
    if (count_ == ctx.ring_size()) {
      if (v == d_) {
        ctx.terminate(sum_);
      } else {
        ctx.abort();
      }
    }
  }

 private:
  Value d_ = 0, buffer_ = 0, sum_ = 0;
  int count_ = 0;
};

TEST(ALeadUni, CorruptedForwardFails) {
  const int n = 9;
  ALeadUniProtocol protocol;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RingEngine engine(n, seed);
    std::vector<std::unique_ptr<RingStrategy>> s;
    for (ProcessorId p = 0; p < n; ++p) {
      if (p == 4) {
        s.push_back(std::make_unique<SwapFirstForwardStrategy>());
      } else {
        s.push_back(protocol.make_strategy(p, n));
      }
    }
    EXPECT_TRUE(engine.run(std::move(s)).failed()) << "seed=" << seed;
  }
}

TEST(ALeadUni, ConsecutiveCoalitionHasLongSegment) {
  // Claim D.1's setting: a consecutive coalition leaves one long honest
  // segment (l = n-k > k-1), so Lemma 4.1's precondition fails and the
  // rushing machinery cannot be instantiated.
  const int n = 30;
  const auto c = Coalition::consecutive(n, 5, 3);
  const auto lengths = c.segment_lengths();
  int nonzero = 0;
  for (const int l : lengths) {
    if (l > 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 1);
  EXPECT_EQ(c.max_segment_length(), n - 5);
  EXPECT_FALSE(c.rushing_precondition_holds());
}

}  // namespace
}  // namespace fle
