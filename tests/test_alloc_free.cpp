// Acceptance check for the zero-allocation execution model (DESIGN.md §4):
// once a reusable workspace is warm, a steady-state trial on the ring path
// — engine reset, arena rewind, strategy emplacement, full execution —
// performs zero heap allocations.  Verified with a counting global
// operator new installed for this test binary only.

#include <gtest/gtest.h>

#include "core/counting_new.inc"

#include <span>
#include <vector>

#include "attacks/basic_single.h"
#include "attacks/deviation.h"
#include "protocols/alead_uni.h"
#include "protocols/basic_lead.h"
#include "sim/arena.h"
#include "sim/engine.h"
#include "sim/graph_engine.h"
#include "sim/lane_engine.h"
#include "sim/sync_engine.h"

namespace fle {
namespace {

std::uint64_t allocations() {
  return counting_new::allocations.load(std::memory_order_relaxed);
}

TEST(ZeroAllocation, ReusedRingTrialWithArenaIsAllocationFree) {
  const int n = 64;
  BasicLeadProtocol protocol;
  RingEngine engine(n, 1);
  StrategyArena arena;
  std::vector<RingStrategy*> profile;

  const auto trial = [&](std::uint64_t seed) {
    engine.reset(seed);
    arena.rewind();
    profile.clear();
    for (ProcessorId p = 0; p < n; ++p) {
      profile.push_back(protocol.emplace_strategy(arena, p, n));
    }
    return engine.run(std::span<RingStrategy* const>(profile));
  };

  // Warm-up: first trials size the arena chunks, queues and stat vectors.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) ASSERT_TRUE(trial(seed).valid());

  const std::uint64_t before = allocations();
  const Outcome outcome = trial(1234);
  const std::uint64_t after = allocations();
  EXPECT_TRUE(outcome.valid());
  EXPECT_EQ(after - before, 0u) << "steady-state honest ring trial allocated";
}

TEST(ZeroAllocation, AdversarialRingTrialSubstrateIsAllocationFree) {
  // The adversary's strategy buffers the honest stream in a private vector,
  // so a deviated trial is not literally allocation-free — but the
  // substrate (engine, inboxes, contexts, scheduler, arena, composition)
  // contributes nothing: the per-trial allocation count is exactly the
  // adversary's deterministic scratch growth, identical every trial, and
  // an honest trial on the same reused engine is back to zero.
  const int n = 32;
  BasicLeadProtocol protocol;
  BasicSingleDeviation deviation(n, /*adversary=*/3, /*target=*/7);
  RingEngine engine(n, 1);
  StrategyArena arena;
  std::vector<RingStrategy*> profile;

  const auto trial = [&](std::uint64_t seed, const Deviation* dev) {
    engine.reset(seed);
    arena.rewind();
    compose_profile_into(protocol, dev, n, arena, profile);
    return engine.run(std::span<RingStrategy* const>(profile));
  };

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(trial(seed, &deviation).valid());
  }

  const std::uint64_t before_a = allocations();
  ASSERT_TRUE(trial(99, &deviation).valid());
  const std::uint64_t scratch_a = allocations() - before_a;

  const std::uint64_t before_b = allocations();
  ASSERT_TRUE(trial(100, &deviation).valid());
  const std::uint64_t scratch_b = allocations() - before_b;

  EXPECT_EQ(scratch_a, scratch_b) << "substrate leaked allocations between trials";
  // buffered_ grows 1 -> n-1 by doubling: a handful of vector growths.
  EXPECT_LE(scratch_a, 8u);

  ASSERT_TRUE(trial(101, nullptr).valid());  // honest warm-up on same engine
  const std::uint64_t before_honest = allocations();
  ASSERT_TRUE(trial(102, nullptr).valid());
  EXPECT_EQ(allocations() - before_honest, 0u);
}

TEST(ZeroAllocation, RunHonestFastPathIsAllocationFree) {
  const int n = 48;
  BasicLeadProtocol protocol;
  // Warm the thread-local workspace run_honest maintains.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(run_honest(protocol, n, seed).valid());
  }
  const std::uint64_t before = allocations();
  const Outcome outcome = run_honest(protocol, n, 4321);
  const std::uint64_t after = allocations();
  EXPECT_TRUE(outcome.valid());
  EXPECT_EQ(after - before, 0u) << "run_honest steady state allocated";
}

// Minimal scalar-state graph protocol: a token (empty message, so the
// payload vector never allocates) walks the ring embedded in the complete
// graph; every processor terminates with 0 on first receipt.  Exercises the
// engine substrate — link queues, contexts, scheduler, stats — with a
// strategy whose own footprint is provably allocation-free.
class GraphTokenStrategy final : public GraphStrategy {
 public:
  GraphTokenStrategy(ProcessorId id, int n) : id_(id), n_(n) {}

  void on_init(GraphContext& ctx) override {
    if (id_ == 0) ctx.send(ring_succ(id_, n_), GraphMessage{});
  }
  void on_receive(GraphContext& ctx, ProcessorId /*from*/, const GraphMessage&) override {
    if (done_) return;
    done_ = true;
    if (id_ != 0) ctx.send(ring_succ(id_, n_), GraphMessage{});
    ctx.terminate(0);
  }

 private:
  ProcessorId id_;
  int n_;
  bool done_ = false;
};

class GraphTokenProtocol final : public GraphProtocol {
 public:
  std::unique_ptr<GraphStrategy> make_strategy(ProcessorId id, int n) const override {
    return std::make_unique<GraphTokenStrategy>(id, n);
  }
  GraphStrategy* emplace_strategy(StrategyArena& arena, ProcessorId id,
                                  int n) const override {
    return arena.emplace<GraphTokenStrategy>(id, n);
  }
  const char* name() const override { return "graph-token"; }
};

TEST(ZeroAllocation, ReusedGraphTrialSubstrateIsAllocationFree) {
  const int n = 16;
  GraphTokenProtocol protocol;
  GraphEngine engine(n, 1);
  StrategyArena arena;
  std::vector<GraphStrategy*> profile;

  const auto trial = [&](std::uint64_t seed) {
    engine.reset(seed, /*schedule_seed=*/seed);
    arena.rewind();
    profile.clear();
    for (ProcessorId p = 0; p < n; ++p) {
      profile.push_back(protocol.emplace_strategy(arena, p, n));
    }
    return engine.run(std::span<GraphStrategy* const>(profile));
  };

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Outcome o = trial(seed);
    ASSERT_TRUE(o.valid());
    ASSERT_EQ(o.leader(), 0u);
  }

  const std::uint64_t before = allocations();
  const Outcome outcome = trial(1234);
  const std::uint64_t after = allocations();
  EXPECT_TRUE(outcome.valid());
  EXPECT_EQ(after - before, 0u) << "steady-state graph trial allocated";
}

// Sync counterpart: round 1 everyone broadcasts an empty message, round 2
// everyone has heard from everyone and terminates with 0.
class SyncEchoStrategy final : public SyncStrategy {
 public:
  void on_round(SyncContext& ctx, const SyncInbox& inbox) override {
    if (ctx.round() == 1) {
      ctx.broadcast(GraphMessage{});
      return;
    }
    if (static_cast<int>(inbox.size()) == ctx.network_size() - 1) ctx.terminate(0);
  }
};

class SyncEchoProtocol final : public SyncProtocol {
 public:
  std::unique_ptr<SyncStrategy> make_strategy(ProcessorId, int) const override {
    return std::make_unique<SyncEchoStrategy>();
  }
  SyncStrategy* emplace_strategy(StrategyArena& arena, ProcessorId, int) const override {
    return arena.emplace<SyncEchoStrategy>();
  }
  const char* name() const override { return "sync-echo"; }
};

TEST(ZeroAllocation, ReusedSyncTrialSubstrateIsAllocationFree) {
  const int n = 16;
  SyncEchoProtocol protocol;
  SyncEngine engine(n, 1);
  StrategyArena arena;
  std::vector<SyncStrategy*> profile;

  const auto trial = [&](std::uint64_t seed) {
    engine.reset(seed);
    arena.rewind();
    profile.clear();
    for (ProcessorId p = 0; p < n; ++p) {
      profile.push_back(protocol.emplace_strategy(arena, p, n));
    }
    return engine.run(std::span<SyncStrategy* const>(profile));
  };

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Outcome o = trial(seed);
    ASSERT_TRUE(o.valid());
    ASSERT_EQ(o.leader(), 0u);
  }

  const std::uint64_t before = allocations();
  const Outcome outcome = trial(1234);
  const std::uint64_t after = allocations();
  EXPECT_TRUE(outcome.valid());
  EXPECT_EQ(after - before, 0u) << "steady-state sync trial allocated";
}

TEST(ZeroAllocation, LaneEngineWindowIsAllocationFree) {
  // The batched lane path (DESIGN.md §10) shares the zero-allocation
  // contract: once the SoA arrays and per-lane control blocks are warm, a
  // whole trial window — refills, retirements and all — allocates nothing.
  const int n = 32;
  LaneEngineOptions options;
  options.lanes = 8;
  for (const LaneKernelId kernel :
       {LaneKernelId::kBasicLead, LaneKernelId::kChangRoberts, LaneKernelId::kALeadUni}) {
    LaneEngine engine(n, kernel, options);
    std::vector<std::uint64_t> seeds(24);
    std::vector<LaneTrialResult> results(24);
    for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = 1000 + i;
    engine.run_window(seeds, results);  // warm-up sizes every vector

    const std::uint64_t before = allocations();
    engine.run_window(seeds, results);
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "steady-state lane window allocated (" << to_string(kernel) << ")";
    for (const LaneTrialResult& r : results) EXPECT_TRUE(r.outcome.valid());
  }
}

TEST(ZeroAllocation, LaneEngineGeneralPathWindowIsAllocationFree) {
  // With the analytic fast paths off, every trial runs the general burst
  // loop over the ring-buffer inbox column; after the first window
  // establishes the column's high-water capacity, pushes and pops never
  // touch the allocator.
  const int n = 32;
  LaneEngineOptions options;
  options.lanes = 8;
  options.fast_paths = false;
  for (const LaneKernelId kernel :
       {LaneKernelId::kBasicLead, LaneKernelId::kChangRoberts, LaneKernelId::kALeadUni}) {
    LaneEngine engine(n, kernel, options);
    std::vector<std::uint64_t> seeds(24);
    std::vector<LaneTrialResult> results(24);
    for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = 2000 + i;
    engine.run_window(seeds, results);  // warm-up sizes column + vectors

    const std::uint64_t before = allocations();
    engine.run_window(seeds, results);
    const std::uint64_t after = allocations();
    EXPECT_EQ(after - before, 0u)
        << "steady-state general-path lane window allocated (" << to_string(kernel) << ")";
    for (const LaneTrialResult& r : results) EXPECT_TRUE(r.outcome.valid());
  }
}

TEST(ZeroAllocation, DeviatedLaneWindowIsAllocationFree) {
  // The deviated kernels' member bursts (replay buffers in the aux column,
  // padding sends) reuse the same flat storage.
  const int n = 12;
  LaneEngineOptions options;
  options.lanes = 4;
  options.fast_paths = false;
  options.deviation.id = LaneDeviationId::kRushing;
  options.deviation.members = {1, 4, 7, 10};
  options.deviation.segment_lengths = {2, 2, 2, 2};
  options.deviation.target = 5;
  LaneEngine engine(n, LaneKernelId::kALeadUni, options);
  std::vector<std::uint64_t> seeds(16);
  std::vector<LaneTrialResult> results(16);
  for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = 3000 + i;
  engine.run_window(seeds, results);  // warm-up

  const std::uint64_t before = allocations();
  engine.run_window(seeds, results);
  EXPECT_EQ(allocations() - before, 0u) << "steady-state deviated lane window allocated";
  for (const LaneTrialResult& r : results) {
    EXPECT_TRUE(r.outcome.valid());
    EXPECT_EQ(r.outcome.leader(), 5u);  // rushing forces the target
  }
}

TEST(ZeroAllocation, SyncLaneWindowIsAllocationFree) {
  // The sync lanes keep every per-(lane, processor) register and both
  // round boxes in flat columns sized at construction.
  const int n = 16;
  SyncLaneEngineOptions options;
  options.lanes = 8;
  for (const SyncLaneKernelId kernel :
       {SyncLaneKernelId::kSyncBroadcast, SyncLaneKernelId::kSyncRing}) {
    SyncLaneEngine engine(n, kernel, options);
    std::vector<std::uint64_t> seeds(24);
    std::vector<LaneTrialResult> results(24);
    for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = 4000 + i;
    engine.run_window(seeds, results);  // warm-up

    const std::uint64_t before = allocations();
    engine.run_window(seeds, results);
    EXPECT_EQ(allocations() - before, 0u)
        << "steady-state sync lane window allocated (" << to_string(kernel) << ")";
    for (const LaneTrialResult& r : results) EXPECT_TRUE(r.outcome.valid());
  }
}

TEST(ZeroAllocation, ALeadUniSteadyStateStaysBounded) {
  // A-LEADuni strategies are scalar-state too, so the whole trial is also
  // allocation-free once warm — documenting that the property is not
  // special to Basic-LEAD.
  const int n = 32;
  ALeadUniProtocol protocol;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(run_honest(protocol, n, seed).valid());
  }
  const std::uint64_t before = allocations();
  ASSERT_TRUE(run_honest(protocol, n, 777).valid());
  EXPECT_EQ(allocations() - before, 0u);
}

}  // namespace
}  // namespace fle
