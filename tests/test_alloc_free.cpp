// Acceptance check for the zero-allocation execution model (DESIGN.md §4):
// once a reusable workspace is warm, a steady-state trial on the ring path
// — engine reset, arena rewind, strategy emplacement, full execution —
// performs zero heap allocations.  Verified with a counting global
// operator new installed for this test binary only.

#include <gtest/gtest.h>

#include "core/counting_new.inc"

#include <span>
#include <vector>

#include "attacks/basic_single.h"
#include "attacks/deviation.h"
#include "protocols/alead_uni.h"
#include "protocols/basic_lead.h"
#include "sim/arena.h"
#include "sim/engine.h"

namespace fle {
namespace {

std::uint64_t allocations() {
  return counting_new::allocations.load(std::memory_order_relaxed);
}

TEST(ZeroAllocation, ReusedRingTrialWithArenaIsAllocationFree) {
  const int n = 64;
  BasicLeadProtocol protocol;
  RingEngine engine(n, 1);
  StrategyArena arena;
  std::vector<RingStrategy*> profile;

  const auto trial = [&](std::uint64_t seed) {
    engine.reset(seed);
    arena.rewind();
    profile.clear();
    for (ProcessorId p = 0; p < n; ++p) {
      profile.push_back(protocol.emplace_strategy(arena, p, n));
    }
    return engine.run(std::span<RingStrategy* const>(profile));
  };

  // Warm-up: first trials size the arena chunks, queues and stat vectors.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) ASSERT_TRUE(trial(seed).valid());

  const std::uint64_t before = allocations();
  const Outcome outcome = trial(1234);
  const std::uint64_t after = allocations();
  EXPECT_TRUE(outcome.valid());
  EXPECT_EQ(after - before, 0u) << "steady-state honest ring trial allocated";
}

TEST(ZeroAllocation, AdversarialRingTrialSubstrateIsAllocationFree) {
  // The adversary's strategy buffers the honest stream in a private vector,
  // so a deviated trial is not literally allocation-free — but the
  // substrate (engine, inboxes, contexts, scheduler, arena, composition)
  // contributes nothing: the per-trial allocation count is exactly the
  // adversary's deterministic scratch growth, identical every trial, and
  // an honest trial on the same reused engine is back to zero.
  const int n = 32;
  BasicLeadProtocol protocol;
  BasicSingleDeviation deviation(n, /*adversary=*/3, /*target=*/7);
  RingEngine engine(n, 1);
  StrategyArena arena;
  std::vector<RingStrategy*> profile;

  const auto trial = [&](std::uint64_t seed, const Deviation* dev) {
    engine.reset(seed);
    arena.rewind();
    compose_profile_into(protocol, dev, n, arena, profile);
    return engine.run(std::span<RingStrategy* const>(profile));
  };

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(trial(seed, &deviation).valid());
  }

  const std::uint64_t before_a = allocations();
  ASSERT_TRUE(trial(99, &deviation).valid());
  const std::uint64_t scratch_a = allocations() - before_a;

  const std::uint64_t before_b = allocations();
  ASSERT_TRUE(trial(100, &deviation).valid());
  const std::uint64_t scratch_b = allocations() - before_b;

  EXPECT_EQ(scratch_a, scratch_b) << "substrate leaked allocations between trials";
  // buffered_ grows 1 -> n-1 by doubling: a handful of vector growths.
  EXPECT_LE(scratch_a, 8u);

  ASSERT_TRUE(trial(101, nullptr).valid());  // honest warm-up on same engine
  const std::uint64_t before_honest = allocations();
  ASSERT_TRUE(trial(102, nullptr).valid());
  EXPECT_EQ(allocations() - before_honest, 0u);
}

TEST(ZeroAllocation, RunHonestFastPathIsAllocationFree) {
  const int n = 48;
  BasicLeadProtocol protocol;
  // Warm the thread-local workspace run_honest maintains.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(run_honest(protocol, n, seed).valid());
  }
  const std::uint64_t before = allocations();
  const Outcome outcome = run_honest(protocol, n, 4321);
  const std::uint64_t after = allocations();
  EXPECT_TRUE(outcome.valid());
  EXPECT_EQ(after - before, 0u) << "run_honest steady state allocated";
}

TEST(ZeroAllocation, ALeadUniSteadyStateStaysBounded) {
  // A-LEADuni strategies are scalar-state too, so the whole trial is also
  // allocation-free once warm — documenting that the property is not
  // special to Basic-LEAD.
  const int n = 32;
  ALeadUniProtocol protocol;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ASSERT_TRUE(run_honest(protocol, n, seed).valid());
  }
  const std::uint64_t before = allocations();
  ASSERT_TRUE(run_honest(protocol, n, 777).valid());
  EXPECT_EQ(allocations() - before, 0u);
}

}  // namespace
}  // namespace fle
