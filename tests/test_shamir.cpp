// GF(2^61-1) field arithmetic, Shamir secret sharing, the fully-connected
// Shamir-LEAD protocol, and the two attacks that pin its n/2 boundary.

#include <gtest/gtest.h>

#include <cmath>

#include "attacks/shamir_attacks.h"
#include "core/field.h"
#include "core/shamir.h"
#include "protocols/shamir_lead.h"

namespace fle {
namespace {

TEST(Field, BasicAlgebra) {
  const Fp a(5), b(7);
  EXPECT_EQ((a + b).value(), 12u);
  EXPECT_EQ((b - a).value(), 2u);
  EXPECT_EQ((a - b).value(), Fp::kP - 2);
  EXPECT_EQ((a * b).value(), 35u);
  EXPECT_EQ(Fp(Fp::kP).value(), 0u);  // reduction at construction
}

TEST(Field, MulReductionNearModulus) {
  const Fp big(Fp::kP - 1);
  EXPECT_EQ((big * big).value(), 1u);  // (-1)^2 = 1
  const Fp x(0x1234'5678'9abcull);
  EXPECT_EQ((x * Fp(1)).value(), x.value());
}

TEST(Field, InverseAndPow) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 200; ++i) {
    const Fp x = Fp::random(rng);
    if (x.value() == 0) continue;
    EXPECT_EQ((x * x.inverse()).value(), 1u);
  }
  EXPECT_EQ(Fp(3).pow(4).value(), 81u);
  EXPECT_EQ(Fp(2).pow(0).value(), 1u);
}

TEST(Shamir, ReconstructFromAnyTShares) {
  Xoshiro256 rng(7);
  const Fp secret(424242);
  const int t = 4, n = 9;
  const auto shares = shamir_share(secret, t, n, rng);
  ASSERT_EQ(shares.size(), 9u);
  // every contiguous window of t shares reconstructs
  for (int start = 0; start + t <= n; ++start) {
    std::vector<Share> subset(shares.begin() + start, shares.begin() + start + t);
    EXPECT_EQ(shamir_reconstruct(subset).value(), secret.value()) << start;
  }
}

TEST(Shamir, FewerThanTSharesAreIndependent) {
  // Statistical privacy: with t-1 shares fixed, the secret is undetermined —
  // two different secrets can produce the same t-1 shares.  We verify the
  // weaker, testable consequence: reconstructing from t-1 points (padded
  // with a guessed point) can land anywhere.
  Xoshiro256 rng(9);
  const int t = 3, n = 5;
  const auto sh0 = shamir_share(Fp(0), t, n, rng);
  const auto sh1 = shamir_share(Fp(1), t, n, rng);
  // Distributions of individual shares should overlap: single shares of
  // different secrets are both uniform; sanity-check value ranges only.
  EXPECT_LT(sh0[0].y.value(), Fp::kP);
  EXPECT_LT(sh1[0].y.value(), Fp::kP);
}

TEST(Shamir, ConsistencyDetectsTampering) {
  Xoshiro256 rng(11);
  const int t = 4, n = 10;
  auto shares = shamir_share(Fp(99), t, n, rng);
  EXPECT_TRUE(shamir_consistent(shares, t));
  EXPECT_TRUE(shamir_reconstruct_checked(shares, t).has_value());
  shares[7].y = shares[7].y + Fp(1);
  EXPECT_FALSE(shamir_consistent(shares, t));
  EXPECT_FALSE(shamir_reconstruct_checked(shares, t).has_value());
}

TEST(Shamir, ConsistencyDetectsTamperingInBasis) {
  // Corrupting one of the first t points must also be caught (the basis
  // polynomial then disagrees with the honest tail).
  Xoshiro256 rng(13);
  const int t = 3, n = 8;
  auto shares = shamir_share(Fp(5), t, n, rng);
  shares[1].y = shares[1].y + Fp(123);
  EXPECT_FALSE(shamir_consistent(shares, t));
}

TEST(Shamir, PencilShiftIsUndetectableWhenHonestBelowT)  {
  // The forging attack's algebra: with h < t honest points, adding c*Z
  // (Z vanishing on them) keeps all points consistent but shifts P(0).
  Xoshiro256 rng(17);
  const int t = 4, n = 6, honest = 3;  // honest < t
  auto shares = shamir_share(Fp(10), t, n, rng);
  auto z_at = [&](Fp x) {
    Fp z(1);
    for (int h = 0; h < honest; ++h) z = z * (x - shares[static_cast<std::size_t>(h)].x);
    return z;
  };
  const Fp c(777);
  for (int j = honest; j < n; ++j) {
    shares[static_cast<std::size_t>(j)].y =
        shares[static_cast<std::size_t>(j)].y + c * z_at(shares[static_cast<std::size_t>(j)].x);
  }
  EXPECT_TRUE(shamir_consistent(shares, t));  // undetectable
  EXPECT_EQ(shamir_reconstruct(std::span<const Share>(shares).first(4)).value(),
            (Fp(10) + c * z_at(Fp(0))).value());  // shifted
}

// --- protocol ---------------------------------------------------------------

TEST(ShamirLead, HonestElectsValidLeader) {
  for (int n : {3, 4, 5, 8, 13, 20}) {
    ShamirLeadProtocol protocol(n);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const Outcome o = run_honest_graph(protocol, n, seed * 53 + 1);
      ASSERT_TRUE(o.valid()) << "n=" << n << " seed=" << seed;
      ASSERT_LT(o.leader(), static_cast<Value>(n));
    }
  }
}

TEST(ShamirLead, HonestUniform) {
  const int n = 6;
  ShamirLeadProtocol protocol(n);
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  const int trials = 1200;
  for (int t = 0; t < trials; ++t) {
    const Outcome o = run_honest_graph(protocol, n, static_cast<std::uint64_t>(t) * 7 + 3);
    ASSERT_TRUE(o.valid());
    ++counts[static_cast<std::size_t>(o.leader())];
  }
  for (const int c : counts) EXPECT_NEAR(c, trials / n, 5 * std::sqrt(trials / 6.0));
}

TEST(ShamirLead, ScheduleIndependentOutcome) {
  const int n = 7;
  ShamirLeadProtocol protocol(n);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    GraphEngineOptions rr;
    const Outcome a = run_honest_graph(protocol, n, seed, std::move(rr));
    GraphEngineOptions rnd;
    rnd.schedule = LinkScheduleKind::kRandom;
    rnd.schedule_seed = seed + 99;
    const Outcome b = run_honest_graph(protocol, n, seed, std::move(rnd));
    EXPECT_EQ(a, b) << seed;
  }
}

TEST(ShamirLead, MessageComplexityIsThreeNSquared) {
  const int n = 8;
  ShamirLeadProtocol protocol(n);
  GraphEngine engine(n, 3);
  std::vector<std::unique_ptr<GraphStrategy>> s;
  for (ProcessorId p = 0; p < n; ++p) s.push_back(protocol.make_strategy(p, n));
  ASSERT_TRUE(engine.run(std::move(s)).valid());
  EXPECT_EQ(engine.stats().total_sent, 3ull * n * (n - 1));
}

TEST(ShamirLead, LyingRevealerCausesAbort) {
  // An adversary that corrupts one reveal entry must be detected: honest
  // points pin the polynomial.
  const int n = 7;
  ShamirLeadProtocol protocol(n);
  class LyingStrategy final : public ShamirLeadStrategy {
   public:
    using ShamirLeadStrategy::ShamirLeadStrategy;

   protected:
    void send_reveal(GraphContext& ctx) override {
      std::vector<Fp> values;
      for (const auto& h : held_) values.push_back(*h);
      values[2] = values[2] + Fp(1);  // lie about processor 2's share
      broadcast_reveal(ctx, std::move(values));
    }
    void finalize(GraphContext& ctx) override {
      if (dead_) return;
      dead_ = true;
      ctx.terminate(0);  // the liar claims an outcome
    }
  };
  GraphEngine engine(n, 5);
  std::vector<std::unique_ptr<GraphStrategy>> s;
  for (ProcessorId p = 0; p < n; ++p) {
    if (p == 4) {
      s.push_back(std::make_unique<LyingStrategy>(p, protocol.params()));
    } else {
      s.push_back(protocol.make_strategy(p, n));
    }
  }
  EXPECT_TRUE(engine.run(std::move(s)).failed());
}

// --- attacks ----------------------------------------------------------------

class ShamirAttackBoundary : public ::testing::TestWithParam<int> {};

TEST_P(ShamirAttackBoundary, RushingControlsAboveT) {
  const int n = GetParam();
  ShamirLeadProtocol protocol(n);
  const int t = protocol.params().t;  // floor(n/2)+1
  const Value w = static_cast<Value>(n - 1);
  ShamirRushingDeviation deviation(Coalition::consecutive(n, t, 1), w, protocol);
  ASSERT_TRUE(deviation.reconstruction_possible());
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    GraphEngine engine(n, seed);
    const Outcome o = engine.run(compose_graph_strategies(protocol, &deviation, n));
    ASSERT_TRUE(o.valid()) << seed;
    EXPECT_EQ(o.leader(), w) << seed;
  }
}

TEST_P(ShamirAttackBoundary, RushingHarmlessBelowT) {
  const int n = GetParam();
  ShamirLeadProtocol protocol(n);
  const int k = protocol.params().t - 2;  // below reconstruction threshold
  if (k < 1) GTEST_SKIP();
  const Value w = 0;
  ShamirRushingDeviation deviation(Coalition::consecutive(n, k, 1), w, protocol);
  ASSERT_FALSE(deviation.reconstruction_possible());
  int hits = 0;
  const int trials = 30;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    GraphEngine engine(n, seed * 13 + 5);
    const Outcome o = engine.run(compose_graph_strategies(protocol, &deviation, n));
    ASSERT_TRUE(o.valid()) << seed;  // attack stays undetected, just useless
    hits += (o.leader() == w) ? 1 : 0;
  }
  EXPECT_LE(hits, trials / 3);  // ~ trials/n expected
}

TEST_P(ShamirAttackBoundary, ForgingControlsAtCeilHalf) {
  const int n = GetParam();
  ShamirLeadProtocol protocol(n);
  const int k = (n + 1) / 2;  // ceil(n/2): one below the rushing threshold
  const Value w = static_cast<Value>(n / 2);
  ShamirForgeDeviation deviation(Coalition::consecutive(n, k, 0), w, protocol);
  ASSERT_TRUE(deviation.forging_possible());
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    GraphEngine engine(n, seed + 17);
    const Outcome o = engine.run(compose_graph_strategies(protocol, &deviation, n));
    ASSERT_TRUE(o.valid()) << seed;
    EXPECT_EQ(o.leader(), w) << seed;
  }
}

TEST_P(ShamirAttackBoundary, ForgingDetectedBelowCeilHalf) {
  const int n = GetParam();
  ShamirLeadProtocol protocol(n);
  const int k = (n + 1) / 2 - 1;  // paper's resilient regime: k <= n/2 - 1
  if (k < 1) GTEST_SKIP();
  const Value w = 0;
  ShamirForgeDeviation deviation(Coalition::consecutive(n, k, 0), w, protocol);
  ASSERT_FALSE(deviation.forging_possible());
  // Below the threshold the pencil shift has degree n-k > t-1, so any
  // actual forgery (c != 0) is detected and the execution FAILs.  The only
  // valid outcomes are the lucky ~1/n of trials where the honest sum already
  // equals the target (c = 0, nothing forged): exactly "no gain".
  std::size_t fails = 0;
  std::size_t target_hits = 0;
  const std::size_t trials = 24;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    GraphEngine engine(n, seed * 97 + 31);
    const Outcome o = engine.run(compose_graph_strategies(protocol, &deviation, n));
    if (o.failed()) {
      ++fails;
    } else {
      EXPECT_EQ(o.leader(), w) << seed;  // valid <=> untouched honest target
      ++target_hits;
    }
  }
  EXPECT_GE(fails, trials / 2) << "forgeries must be detected";
  EXPECT_LE(target_hits, trials / 2) << "hit rate must stay near 1/n";
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShamirAttackBoundary, ::testing::Values(4, 5, 6, 9, 12));

TEST(ShamirAttacks, BoundaryMatchesPaper) {
  // Resilient for k <= ceil(n/2)-1, broken at k = ceil(n/2): the paper's
  // "optimal resilience k = n/2 - 1".
  for (int n : {6, 10, 14}) {
    ShamirLeadProtocol protocol(n);
    ShamirForgeDeviation at_half(Coalition::consecutive(n, (n + 1) / 2, 0), 0, protocol);
    EXPECT_TRUE(at_half.forging_possible());
    ShamirForgeDeviation below(Coalition::consecutive(n, (n + 1) / 2 - 1, 0), 0, protocol);
    EXPECT_FALSE(below.forging_possible());
  }
}

}  // namespace
}  // namespace fle
