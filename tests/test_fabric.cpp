// The sweep fabric (src/fabric/): wire-protocol frame round-trips and
// malformed-input rejection, handshake digests, deterministic fault plans,
// hardened shard-row ingestion, and the end-to-end loopback contract —
// RemoteExecutor over in-process workers is bit-identical to run_sweep,
// clean or under an injected fault schedule, and fails loudly when the
// whole fleet dies.

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/scenario.h"
#include "api/sweep.h"
#include "fabric/driver.h"
#include "fabric/fault.h"
#include "fabric/wire.h"
#include "fabric/worker.h"
#include "verify/shard.h"

namespace fle::fabric {
namespace {

// ---- wire protocol ----------------------------------------------------------

Frame roundtrip(const std::vector<std::uint8_t>& bytes) {
  const auto parsed = try_parse_frame(bytes);
  EXPECT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->consumed, bytes.size());
  return parsed->frame;
}

TEST(FabricWire, HelloRoundTrips) {
  Hello hello;
  hello.build = 0xdeadbeefcafef00dull;
  hello.label = "worker-7";
  const Frame frame = roundtrip(encode_frame(hello));
  ASSERT_EQ(frame.kind, MessageKind::kHello);
  EXPECT_EQ(frame.hello.version, kWireVersion);
  EXPECT_EQ(frame.hello.build, hello.build);
  EXPECT_EQ(frame.hello.label, "worker-7");
}

TEST(FabricWire, WelcomeCarriesSpecLines) {
  Welcome welcome;
  welcome.build = 7;
  welcome.spec_lines = {"topology=ring protocol=basic-lead n=4 trials=10 seed=1",
                        "topology=sync protocol=sync-ring-lead n=3 trials=5 seed=2"};
  welcome.spec_digest = sweep_digest(welcome.spec_lines);
  const Frame frame = roundtrip(encode_frame(welcome));
  ASSERT_EQ(frame.kind, MessageKind::kWelcome);
  EXPECT_EQ(frame.welcome.spec_lines, welcome.spec_lines);
  EXPECT_EQ(frame.welcome.spec_digest, welcome.spec_digest);
}

TEST(FabricWire, AssignResultHeartbeatErrorRoundTrip) {
  const Frame assign = roundtrip(encode_frame(Assign{9, 2, 128, 32}));
  ASSERT_EQ(assign.kind, MessageKind::kAssign);
  EXPECT_EQ(assign.assign.window, 9u);
  EXPECT_EQ(assign.assign.scenario, 2u);
  EXPECT_EQ(assign.assign.trial_offset, 128u);
  EXPECT_EQ(assign.assign.trial_count, 32u);

  ResultMsg result;
  result.window = 9;
  result.row = "{\"case\": 0}";
  const Frame echoed = roundtrip(encode_frame(result));
  ASSERT_EQ(echoed.kind, MessageKind::kResult);
  EXPECT_EQ(echoed.result.row, result.row);

  EXPECT_EQ(roundtrip(encode_frame(Heartbeat{41})).heartbeat.seq, 41u);

  ErrorMsg error;
  error.message = "boom";
  EXPECT_EQ(roundtrip(encode_frame(error)).error.message, "boom");

  EXPECT_EQ(roundtrip(encode_frame(MessageKind::kDrain)).kind, MessageKind::kDrain);
  EXPECT_EQ(roundtrip(encode_frame(MessageKind::kBye)).kind, MessageKind::kBye);
}

TEST(FabricWire, PartialBuffersKeepBuffering) {
  const std::vector<std::uint8_t> full = encode_frame(Heartbeat{500});
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(full.begin(),
                                           full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(try_parse_frame(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(FabricWire, BackToBackFramesParseSequentially) {
  std::vector<std::uint8_t> buffer = encode_frame(Heartbeat{1});
  const std::vector<std::uint8_t> second = encode_frame(MessageKind::kDrain);
  buffer.insert(buffer.end(), second.begin(), second.end());

  const auto first = try_parse_frame(buffer);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->frame.kind, MessageKind::kHeartbeat);
  buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(first->consumed));
  const auto next = try_parse_frame(buffer);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->frame.kind, MessageKind::kDrain);
  EXPECT_EQ(next->consumed, buffer.size());
}

TEST(FabricWire, MalformedFramesThrow) {
  // Unknown message kind.
  EXPECT_THROW(try_parse_frame(std::vector<std::uint8_t>{1, 0xee}), std::invalid_argument);
  // Zero-length payload.
  EXPECT_THROW(try_parse_frame(std::vector<std::uint8_t>{0}), std::invalid_argument);
  // Length prefix far beyond the frame cap.
  EXPECT_THROW(
      try_parse_frame(std::vector<std::uint8_t>{0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}),
      std::invalid_argument);
  // Trailing bytes after a complete payload (heartbeat + junk inside the frame).
  std::vector<std::uint8_t> padded = encode_frame(Heartbeat{3});
  padded[0] += 1;  // length prefix claims one more byte...
  padded.push_back(0x00);  // ...and here it is, unconsumed by the decoder
  EXPECT_THROW(try_parse_frame(padded), std::invalid_argument);
  // String field overruns the payload.
  std::vector<std::uint8_t> bad_string;
  leb128_put(bad_string, 3);
  bad_string.push_back(static_cast<std::uint8_t>(MessageKind::kError));
  leb128_put(bad_string, 200);  // claims a 200-byte message in a 3-byte payload
  bad_string.push_back('x');
  EXPECT_THROW(try_parse_frame(bad_string), std::invalid_argument);
}

TEST(FabricWire, DedupFramesRoundTrip) {
  LeafOffer offer;
  offer.window = 12;
  offer.keys.push_back(Sha256::of_string("a"));
  offer.keys.push_back(Sha256::of_string("b"));
  const Frame offered = roundtrip(encode_frame(offer));
  ASSERT_EQ(offered.kind, MessageKind::kLeafOffer);
  EXPECT_EQ(offered.offer.window, 12u);
  ASSERT_EQ(offered.offer.keys.size(), 2u);
  EXPECT_EQ(offered.offer.keys[0], Sha256::of_string("a"));
  EXPECT_EQ(offered.offer.keys[1], Sha256::of_string("b"));

  LeafWant want;
  want.window = 12;
  want.indices = {0, 5, 9};
  const Frame wanted = roundtrip(encode_frame(want));
  ASSERT_EQ(wanted.kind, MessageKind::kLeafWant);
  EXPECT_EQ(wanted.want.window, 12u);
  EXPECT_EQ(wanted.want.indices, (std::vector<std::uint64_t>{0, 5, 9}));

  ResultDedup dedup;
  dedup.window = 12;
  dedup.row = "{\"case\": 1}";
  dedup.blobs.emplace_back(5, std::vector<std::uint8_t>{1, 2, 3});
  const Frame shipped = roundtrip(encode_frame(dedup));
  ASSERT_EQ(shipped.kind, MessageKind::kResultDedup);
  EXPECT_EQ(shipped.result_dedup.row, dedup.row);
  ASSERT_EQ(shipped.result_dedup.blobs.size(), 1u);
  EXPECT_EQ(shipped.result_dedup.blobs[0].first, 5u);
  EXPECT_EQ(shipped.result_dedup.blobs[0].second, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(FabricWire, TruncatedLeafOfferThrows) {
  // A key count that overruns the payload must be rejected before any
  // allocation, like every other malformed frame.
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(MessageKind::kLeafOffer));
  leb128_put(payload, 1);    // window
  leb128_put(payload, 100);  // claims 100 keys, carries none
  std::vector<std::uint8_t> framed;
  leb128_put(framed, payload.size());
  framed.insert(framed.end(), payload.begin(), payload.end());
  EXPECT_THROW(try_parse_frame(framed), std::invalid_argument);
}

TEST(FabricWire, DigestsAreStableAndOrderSensitive) {
  EXPECT_EQ(build_digest(), build_digest());
  const std::vector<std::string> ab = {"a", "b"};
  const std::vector<std::string> ba = {"b", "a"};
  EXPECT_NE(sweep_digest(ab), sweep_digest(ba));
  EXPECT_EQ(sweep_digest(ab), sweep_digest(ab));
}

// ---- fault plans ------------------------------------------------------------

TEST(FaultPlan, ParseFormatRoundTrips) {
  const std::string text = "corrupt@1,kill@2,hang@3:2000,slow@4:250";
  const FaultPlan plan = FaultPlan::parse(text);
  ASSERT_EQ(plan.actions.size(), 4u);
  EXPECT_EQ(plan.format(), text);
  EXPECT_EQ(FaultPlan::parse(plan.format()), plan);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlan, ActionAtMatchesOrdinal) {
  const FaultPlan plan = FaultPlan::parse("kill@2,slow@5:100");
  EXPECT_FALSE(plan.action_at(1).has_value());
  ASSERT_TRUE(plan.action_at(2).has_value());
  EXPECT_EQ(plan.action_at(2)->kind, FaultKind::kKill);
  ASSERT_TRUE(plan.action_at(5).has_value());
  EXPECT_EQ(plan.action_at(5)->millis, 100u);
}

TEST(FaultPlan, ParseRejectsMalformedPlans) {
  EXPECT_THROW(FaultPlan::parse("explode@1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill@0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill@x"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("kill@1:5"), std::invalid_argument);    // no parameter
  EXPECT_THROW(FaultPlan::parse("corrupt@1:5"), std::invalid_argument); // no parameter
  EXPECT_THROW(FaultPlan::parse("kill@1,hang@1"), std::invalid_argument);  // duplicate
  EXPECT_THROW(FaultPlan::parse("kill@1,,kill@2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("hang@2:abc"), std::invalid_argument);
}

TEST(FaultPlan, SampleIsDeterministic) {
  const FaultPlan a = FaultPlan::sample(99, 32, 0.5);
  const FaultPlan b = FaultPlan::sample(99, 32, 0.5);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(FaultPlan::sample(99, 32, 0.0).empty());
  const FaultPlan all = FaultPlan::sample(99, 16, 1.0);
  EXPECT_EQ(all.actions.size(), 16u);
  EXPECT_THROW(FaultPlan::sample(1, 4, 1.5), std::invalid_argument);
}

// ---- hardened shard-row ingestion -------------------------------------------

std::string valid_row() {
  ScenarioSpec spec;
  spec.protocol = "basic-lead";
  spec.n = 4;
  spec.trials = 10;
  spec.seed = 3;
  verify::ShardRow row;
  row.spec_line = "topology=ring protocol=basic-lead n=4 trials=10 seed=3";
  row.result = run_scenario(spec);
  return verify::format_shard_row(row);
}

void expect_parse_error(std::string row, const std::string& needle) {
  try {
    (void)verify::parse_shard_row(row);
    FAIL() << "expected rejection mentioning '" << needle << "' for: " << row;
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "error was: " << error.what();
  }
}

TEST(ShardHardening, TruncatedRowNamesTheProblem) {
  const std::string row = valid_row();
  expect_parse_error(row.substr(0, row.size() / 2), "shard row");
  expect_parse_error(row.substr(0, row.size() - 1), "truncated");
}

TEST(ShardHardening, TrailingGarbageRejected) {
  expect_parse_error(valid_row() + " oops", "trailing");
}

TEST(ShardHardening, DuplicateKeysRejected) {
  std::string row = valid_row();
  row.insert(1, "\"case\": 0, ");
  expect_parse_error(row, "duplicate key 'case'");
}

TEST(ShardHardening, NonIntegerFieldsNameTheKey) {
  std::string negative = valid_row();
  const std::size_t seed_pos = negative.find("\"base_seed\": 3");
  ASSERT_NE(seed_pos, std::string::npos);
  negative.replace(seed_pos, 14, "\"base_seed\": -3");
  expect_parse_error(negative, "'base_seed'");

  std::string garbage = valid_row();
  const std::size_t trials_pos = garbage.find("\"trials\": 10");
  ASSERT_NE(trials_pos, std::string::npos);
  garbage.replace(trials_pos, 12, "\"trials\": 10abc");
  expect_parse_error(garbage, "'trials'");
}

TEST(ShardHardening, BadBooleanRejected) {
  std::string row = valid_row();
  const std::size_t pos = row.find("\"recorded\": false");
  ASSERT_NE(pos, std::string::npos);
  row.replace(pos, 17, "\"recorded\": maybe");
  expect_parse_error(row, "'recorded'");
}

TEST(ShardHardening, WindowOverrunningSpecTrialsRejected) {
  std::string row = valid_row();
  const std::size_t pos = row.find("\"trial_offset\": 0");
  ASSERT_NE(pos, std::string::npos);
  row.replace(pos, 17, "\"trial_offset\": 5");
  expect_parse_error(row, "overruns");
}

TEST(ShardHardening, BadTranscriptHexNamesTheTrial) {
  ScenarioSpec spec;
  spec.protocol = "basic-lead";
  spec.n = 4;
  spec.trials = 2;
  spec.seed = 3;
  spec.record_outcomes = true;
  spec.record_transcripts = true;
  verify::ShardRow row;
  row.spec_line =
      "topology=ring protocol=basic-lead n=4 trials=2 seed=3 record=1 transcripts=1";
  row.result = run_scenario(spec);
  std::string line = verify::format_shard_row(row);

  const std::size_t pos = line.find("\"transcripts\": \"");
  ASSERT_NE(pos, std::string::npos);
  std::string corrupted = line;
  corrupted[pos + 16] = 'z';  // not a hex digit
  expect_parse_error(corrupted, "transcripts[0]");

  std::string truncated = line;
  const std::size_t comma = truncated.find(',', pos);
  ASSERT_NE(comma, std::string::npos);
  truncated.erase(comma - 1, 1);  // odd-length first blob
  expect_parse_error(truncated, "transcripts[0]");
}

verify::ShardRow recorded_row() {
  ScenarioSpec spec;
  spec.protocol = "basic-lead";
  spec.n = 4;
  spec.trials = 2;
  spec.seed = 3;
  spec.record_outcomes = true;
  spec.record_transcripts = true;
  verify::ShardRow row;
  row.spec_line =
      "topology=ring protocol=basic-lead n=4 trials=2 seed=3 record=1 transcripts=1";
  row.result = run_scenario(spec);
  return row;
}

TEST(ShardHardening, UppercaseTranscriptHexAccepted) {
  const std::string line = verify::format_shard_row(recorded_row());
  const std::size_t start = line.find("\"transcripts\": \"") + 16;
  ASSERT_NE(start, std::string::npos + 16);
  const std::size_t end = line.find('"', start);
  ASSERT_NE(end, std::string::npos);
  std::string uppercased = line;
  for (std::size_t i = start; i < end; ++i) {
    uppercased[i] = static_cast<char>(std::toupper(uppercased[i]));
  }
  const verify::ShardRow original = verify::parse_shard_row(line);
  const verify::ShardRow upper = verify::parse_shard_row(uppercased);
  ASSERT_EQ(upper.result.per_trial_transcript.size(),
            original.result.per_trial_transcript.size());
  for (std::size_t t = 0; t < original.result.per_trial_transcript.size(); ++t) {
    EXPECT_EQ(upper.result.per_trial_transcript[t], original.result.per_trial_transcript[t]);
  }
}

TEST(ShardHardening, BadTranscriptHexReportsTheByteOffset) {
  std::string line = verify::format_shard_row(recorded_row());
  const std::size_t start = line.find("\"transcripts\": \"") + 16;
  ASSERT_NE(start, std::string::npos + 16);
  line[start + 7] = 'q';  // hex digit 7 = byte 3 of trial 0's blob
  expect_parse_error(line, "'q' at byte 3");
}

TEST(ShardHardening, StoreKeysValidateAgainstTheTranscripts) {
  const verify::ShardRow row = recorded_row();
  const std::string line = verify::format_shard_row(row);
  ASSERT_NE(line.find("\"store_keys\""), std::string::npos);
  // The emitted keys parse back and match the recorded content keys.
  (void)verify::parse_shard_row(line);
  // A corrupted key is caught by the transcript cross-check.
  std::string corrupted = line;
  const std::size_t pos = corrupted.find("\"store_keys\": \"") + 15;
  corrupted[pos] = corrupted[pos] == '0' ? '1' : '0';
  expect_parse_error(corrupted, "store_keys[0]");
}

TEST(ShardHardening, ElidedRowsCarryKeysInsteadOfBlobs) {
  const verify::ShardRow row = recorded_row();
  const std::string elided = verify::format_shard_row(row, /*elide_transcripts=*/true);
  EXPECT_EQ(elided.find("\"transcripts\":"), std::string::npos);
  ASSERT_NE(elided.find("\"transcripts_elided\": true"), std::string::npos);
  const verify::ShardRow parsed = verify::parse_shard_row(elided);
  EXPECT_TRUE(parsed.transcripts_elided);
  ASSERT_EQ(parsed.store_keys.size(), row.result.per_trial_transcript.size());
  for (std::size_t t = 0; t < parsed.store_keys.size(); ++t) {
    EXPECT_EQ(parsed.store_keys[t], row.result.per_trial_transcript[t].content_key().hex());
  }
}

TEST(ShardHardening, MergeNamesOverlapAndGap) {
  ScenarioSpec spec;
  spec.protocol = "basic-lead";
  spec.n = 4;
  spec.trials = 10;
  spec.seed = 3;
  const std::string spec_line = "topology=ring protocol=basic-lead n=4 trials=10 seed=3";

  const auto window_row = [&](std::size_t offset, std::size_t count) {
    ScenarioSpec window = spec;
    window.trial_offset = offset;
    window.trial_count = count;
    verify::ShardRow row;
    row.spec_line = spec_line;
    row.result = run_scenario(window);
    return row;
  };

  {  // duplicate shard file → overlap, named as such
    std::vector<verify::ShardRow> rows = {window_row(0, 5), window_row(0, 5),
                                          window_row(5, 5)};
    try {
      (void)verify::merge_shard_rows(std::move(rows));
      FAIL() << "expected overlap rejection";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("overlap"), std::string::npos)
          << error.what();
      EXPECT_NE(std::string(error.what()).find("duplicate shard file"), std::string::npos)
          << error.what();
    }
  }
  {  // missing middle shard → gap, named as such
    std::vector<verify::ShardRow> rows = {window_row(0, 3), window_row(7, 3)};
    try {
      (void)verify::merge_shard_rows(std::move(rows));
      FAIL() << "expected gap rejection";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("gap [3, 7)"), std::string::npos)
          << error.what();
    }
  }
  {  // missing tail shard → the tiling check names the uncovered range
    std::vector<verify::ShardRow> rows = {window_row(0, 5)};
    EXPECT_THROW((void)verify::merge_shard_rows(std::move(rows)), std::invalid_argument);
  }
}

// ---- the loopback fabric ----------------------------------------------------

SweepSpec loopback_sweep() {
  SweepSpec sweep;
  {
    ScenarioSpec spec;
    spec.protocol = "alead-uni";
    spec.n = 8;
    spec.trials = 60;
    spec.seed = 17;
    sweep.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.protocol = "basic-lead";
    spec.n = 5;
    spec.trials = 30;
    spec.seed = 5;
    spec.record_outcomes = true;
    spec.record_transcripts = true;
    sweep.add(spec);
  }
  {
    ScenarioSpec spec;
    spec.topology = TopologyKind::kSync;
    spec.protocol = "sync-broadcast-lead";
    spec.n = 4;
    spec.trials = 24;
    spec.seed = 23;
    sweep.add(spec);
  }
  return sweep;
}

/// Runs the sweep on a RemoteExecutor fed by in-process workers (one thread
/// per FaultPlan) and requires the canonical report to be byte-identical to
/// the in-process run_sweep.
void expect_fabric_matches_local(const std::vector<FaultPlan>& worker_plans,
                                 FabricOptions options) {
  const SweepSpec sweep = loopback_sweep();
  const std::vector<ScenarioResult> local = run_sweep(sweep);

  RemoteExecutor executor(options);
  std::vector<std::thread> workers;
  workers.reserve(worker_plans.size());
  for (std::size_t w = 0; w < worker_plans.size(); ++w) {
    WorkerOptions worker;
    worker.port = executor.port();
    worker.label = "t";
    worker.label += std::to_string(w);
    worker.faults = worker_plans[w];
    worker.threads = 2;
    workers.push_back(std::thread([worker] { (void)run_worker(worker); }));
  }
  std::vector<ScenarioResult> remote;
  try {
    remote = executor.run_sweep(sweep);
  } catch (...) {
    for (std::thread& t : workers) t.join();
    throw;
  }
  for (std::thread& t : workers) t.join();

  ASSERT_EQ(remote.size(), local.size());
  // Byte-identical, transcripts included: the whole acceptance criterion in
  // one string comparison.
  EXPECT_EQ(canonical_report(sweep, remote), canonical_report(sweep, local));
}

TEST(FabricLoopback, CleanRunIsBitIdenticalToLocal) {
  FabricOptions options;
  options.window_trials = 16;
  expect_fabric_matches_local({FaultPlan{}, FaultPlan{}}, options);
}

TEST(FabricLoopback, SurvivesKillHangCorruptAndSlowWorkers) {
  FabricOptions options;
  options.window_trials = 8;
  options.window_deadline = std::chrono::milliseconds(400);
  options.heartbeat_interval = std::chrono::milliseconds(100);
  expect_fabric_matches_local(
      {
          FaultPlan::parse("kill@2"),
          FaultPlan::parse("hang@1:2000"),  // past the deadline: dropped + re-issued
          FaultPlan::parse("corrupt@1,slow@2:150"),
          FaultPlan{},  // one steady worker keeps the sweep finishable
      },
      options);
}

TEST(FabricLoopback, SeededFaultPlansStayBitIdentical) {
  FabricOptions options;
  options.window_trials = 8;
  options.window_deadline = std::chrono::milliseconds(400);
  for (const std::uint64_t seed : {1ull, 2ull}) {
    // Faulted workers plus one steady one; every sampled schedule must
    // produce the same bytes.
    expect_fabric_matches_local(
        {FaultPlan::sample(seed, 6, 0.4), FaultPlan::sample(seed + 100, 6, 0.4),
         FaultPlan{}},
        options);
  }
}

TEST(FabricDriver, BackoffDeadlineDoublesAndSaturates) {
  using std::chrono::milliseconds;
  EXPECT_EQ(backoff_deadline(milliseconds(100), 1), milliseconds(100));
  EXPECT_EQ(backoff_deadline(milliseconds(100), 2), milliseconds(200));
  EXPECT_EQ(backoff_deadline(milliseconds(100), 4), milliseconds(800));
  EXPECT_EQ(backoff_deadline(milliseconds(100), 9), milliseconds(800));  // capped at 8x
  // Regression: a huge --deadline-ms used to overflow `base * 8` (and the
  // subsequent now() + deadline addition in nanoseconds) into a deadline in
  // the past, so every worker instantly "missed" its window.
  const auto huge = milliseconds(std::numeric_limits<std::int64_t>::max() / 10);
  for (int attempts = 1; attempts <= 5; ++attempts) {
    const auto saturated = backoff_deadline(huge, attempts);
    EXPECT_GT(saturated.count(), 0);
    const auto before = std::chrono::steady_clock::now();
    EXPECT_GT(before + saturated, before);
  }
}

TEST(FabricLoopback, DedupReusesRepeatedTranscriptBlobs) {
  SweepSpec sweep;
  ScenarioSpec spec;
  spec.protocol = "basic-lead";
  spec.n = 5;
  spec.trials = 30;
  spec.seed = 5;
  spec.record_transcripts = true;
  sweep.add(spec);
  sweep.add(spec);  // identical twin: all of its leaves are already cached

  const std::vector<ScenarioResult> local = run_sweep(sweep);
  FabricOptions options;
  options.window_trials = 10;
  RemoteExecutor executor(options);
  WorkerOptions worker;
  worker.port = executor.port();
  worker.threads = 2;
  std::thread thread([worker] { (void)run_worker(worker); });
  std::vector<ScenarioResult> remote;
  try {
    remote = executor.run_sweep(sweep);
  } catch (...) {
    thread.join();
    throw;
  }
  thread.join();

  // Dedup is a transport optimization: the merged report stays bit-identical.
  EXPECT_EQ(canonical_report(sweep, remote), canonical_report(sweep, local));
  const DedupStats& stats = executor.dedup_stats();
  EXPECT_EQ(stats.keys_offered, 60u);
  EXPECT_EQ(stats.blobs_shipped + stats.blobs_reused, stats.keys_offered);
  // One worker drains windows in plan order, so by the time the twin
  // scenario runs, every one of its 30 blobs is served from the cache.
  EXPECT_GE(stats.blobs_reused, 30u);
  EXPECT_LE(stats.blobs_shipped, 30u);
}

TEST(FabricLoopback, AllWorkersDeadFailsTheSweepLoudly) {
  FabricOptions options;
  options.window_trials = 16;
  options.window_deadline = std::chrono::milliseconds(300);
  options.worker_grace = std::chrono::milliseconds(800);
  try {
    expect_fabric_matches_local({FaultPlan::parse("kill@1"), FaultPlan::parse("kill@1")},
                                options);
    FAIL() << "expected the sweep to fail with no workers left";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("all workers lost"), std::string::npos)
        << error.what();
    EXPECT_NE(std::string(error.what()).find("outstanding"), std::string::npos)
        << error.what();
  }
}

TEST(FabricLoopback, RejectsMismatchedBuilds) {
  RemoteExecutor executor(FabricOptions{});
  std::thread driver([&executor] {
    try {
      (void)executor.run_sweep(loopback_sweep());
    } catch (const std::runtime_error&) {
      // Expected: the only worker is rejected, then the grace expires.
    }
  });
  // Speak the protocol directly with a wrong build digest.
  Socket sock = connect_tcp("127.0.0.1", executor.port(), std::chrono::seconds(5));
  set_read_timeout(sock.fd(), std::chrono::seconds(10));
  Hello hello;
  hello.build = 0x1234;  // no real build folds to this
  hello.label = "impostor";
  const auto bytes = encode_frame(hello);
  send_bytes(sock.fd(), bytes.data(), bytes.size(), /*blocking=*/true);
  std::vector<std::uint8_t> buffer;
  const auto reply = read_frame(sock.fd(), buffer);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->kind, MessageKind::kError);
  EXPECT_NE(reply->error.message.find("handshake rejected"), std::string::npos);
  driver.join();
}

// ---- backend routing --------------------------------------------------------

class CountingBackend final : public SweepBackend {
 public:
  std::vector<ScenarioResult> run_sweep(const SweepSpec& sweep) override {
    ++calls;
    std::vector<ScenarioResult> out;
    for (const ScenarioSpec& spec : sweep.scenarios) out.push_back(ScenarioResult(spec.n));
    return out;
  }
  int calls = 0;
};

TEST(SweepBackend, RunSweepRoutesThroughInstalledBackend) {
  CountingBackend backend;
  SweepBackend* previous = set_sweep_backend(&backend);
  SweepSpec sweep;
  ScenarioSpec spec;
  spec.protocol = "basic-lead";
  spec.n = 4;
  spec.trials = 5;
  sweep.add(spec);
  const std::vector<ScenarioResult> results = run_sweep(sweep);
  set_sweep_backend(previous);
  EXPECT_EQ(backend.calls, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcomes.domain(), 4);
  // With the backend uninstalled the in-process executor is back.
  const std::vector<ScenarioResult> direct = run_sweep(sweep);
  EXPECT_EQ(backend.calls, 1);
  EXPECT_EQ(direct[0].trials, 5u);
}

}  // namespace
}  // namespace fle::fabric
