// Appendix G: the indexing (counter) phase composed with inner protocols.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/stats.h"
#include "protocols/alead_uni.h"
#include "protocols/indexing.h"
#include "protocols/phase_async_lead.h"
#include "sim/engine.h"

namespace fle {
namespace {

TEST(Indexing, PhaseAsyncLeadStillElectsValidLeader) {
  for (int n : {2, 3, 5, 9, 16}) {
    auto inner = std::make_shared<PhaseAsyncLeadProtocol>(n, 0xddull + n);
    IndexingProtocol protocol(inner);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      const Outcome o = run_honest(protocol, n, seed);
      ASSERT_TRUE(o.valid()) << "n=" << n << " seed=" << seed;
      ASSERT_LT(o.leader(), static_cast<Value>(n));
    }
  }
}

TEST(Indexing, ALeadStillElectsValidLeader) {
  for (int n : {2, 4, 11}) {
    auto inner = std::make_shared<ALeadUniProtocol>();
    IndexingProtocol protocol(inner);
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      ASSERT_TRUE(run_honest(protocol, n, seed).valid()) << "n=" << n;
    }
  }
}

TEST(Indexing, AddsExactlyNMessages) {
  const int n = 10;
  auto inner = std::make_shared<ALeadUniProtocol>();
  IndexingProtocol protocol(inner);
  RingEngine engine(n, 5);
  std::vector<std::unique_ptr<RingStrategy>> s;
  for (ProcessorId p = 0; p < n; ++p) s.push_back(protocol.make_strategy(p, n));
  ASSERT_TRUE(engine.run(std::move(s)).valid());
  EXPECT_EQ(engine.stats().total_sent,
            static_cast<std::uint64_t>(n) * n + static_cast<std::uint64_t>(n));
}

TEST(Indexing, ElectionStaysUniform) {
  const int n = 6;
  auto inner = std::make_shared<PhaseAsyncLeadProtocol>(n, 0xabcdull);
  IndexingProtocol protocol(inner);
  ExperimentConfig config;
  config.n = n;
  config.trials = 3000;
  const auto result = run_trials(protocol, nullptr, config);
  EXPECT_EQ(result.outcomes.fails(), 0u);
  EXPECT_LT(result.outcomes.chi_square_uniform(), chi_square_critical_999(n - 1));
}

TEST(Indexing, MatchesDirectExecutionOutcome) {
  // The indexing wrapper assigns exactly the physical positions, so the
  // elected leader must equal the direct run's (inner strategies consume
  // identical tape prefixes... they do not: the wrapper does not draw from
  // the tape, so draws align).
  const int n = 8;
  auto inner = std::make_shared<PhaseAsyncLeadProtocol>(n, 0x31ull);
  IndexingProtocol wrapped(inner);
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Outcome direct = run_honest(*inner, n, seed);
    const Outcome indexed = run_honest(wrapped, n, seed);
    ASSERT_TRUE(direct.valid());
    EXPECT_EQ(indexed, direct) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace fle
