// ScenarioSpec fuzzer (src/verify/fuzzer.h): deterministic generation,
// repro-line round-trips, invariant checking, and shrinking.

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <string>

#include "verify/fuzzer.h"

namespace fle::verify {
namespace {

TEST(FuzzGenerate, SameSeedSameSpecs) {
  FuzzOptions options;
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(format_spec(generate_spec(a, options)), format_spec(generate_spec(b, options)));
  }
}

TEST(FuzzGenerate, SpecsStayInsideTheConfiguredBounds) {
  FuzzOptions options;
  options.max_n = 10;
  options.max_ring_n = 10;  // pin the ring-family ceiling to the general one
  options.trials_per_spec = 4;
  Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    const ScenarioSpec spec = generate_spec(rng, options);
    EXPECT_GE(spec.n, 2);
    EXPECT_LE(spec.n, 10);
    EXPECT_GE(spec.trials, 1u);
    EXPECT_LE(spec.trials, 4u);
    EXPECT_FALSE(spec.protocol.empty());
  }
}

TEST(FuzzGenerate, RingFamilySamplesPastTheGeneralCeiling) {
  // ROADMAP gap: n stayed <= 24 for every family.  With defaults, a
  // quarter of kRing specs now sample (max_n, max_ring_n]; every other
  // family stays inside max_n.
  FuzzOptions options;
  Xoshiro256 rng(7);
  int ring_past_24 = 0;
  for (int i = 0; i < 400; ++i) {
    const ScenarioSpec spec = generate_spec(rng, options);
    EXPECT_LE(spec.n, options.max_ring_n);
    if (spec.topology == TopologyKind::kRing && spec.n > options.max_n) ++ring_past_24;
    if (spec.topology != TopologyKind::kRing) {
      EXPECT_LE(spec.n, options.max_n);
    }
  }
  EXPECT_GT(ring_past_24, 10);
}

TEST(FuzzGenerate, UserRegisteredEntriesAreOnTheSurface) {
  FuzzOptions options;
  Xoshiro256 rng(11);
  int user_specs = 0;
  for (int i = 0; i < 600; ++i) {
    const ScenarioSpec spec = generate_spec(rng, options);
    if (spec.protocol.rfind("user-", 0) == 0 || spec.deviation.rfind("user-", 0) == 0) {
      ++user_specs;
    }
  }
  EXPECT_GT(user_specs, 5);
}

TEST(FuzzGenerate, AdjacencyRestrictedGraphsAreOnTheSurface) {
  FuzzOptions options;
  Xoshiro256 rng(13);
  int restricted = 0;
  for (int i = 0; i < 600; ++i) {
    const ScenarioSpec spec = generate_spec(rng, options);
    if (spec.adjacency != GraphAdjacency::kComplete) {
      EXPECT_EQ(spec.topology, TopologyKind::kGraph);
      ++restricted;
    }
  }
  EXPECT_GT(restricted, 5);
}

TEST(FuzzInvariants, UserTokenGraphRunsOnTheDirectedRingAdjacency) {
  register_fuzz_user_entries();
  const ScenarioSpec spec = parse_spec(
      "topology=graph protocol=user-token-graph adjacency=directed-ring n=6 trials=4 "
      "seed=3 transcripts=1");
  EXPECT_EQ(run_spec_invariants(spec, /*check_determinism=*/true), std::nullopt);
}

TEST(FuzzInvariants, BroadcastProtocolOnRestrictedAdjacencyIsACleanRejection) {
  const ScenarioSpec spec = parse_spec(
      "topology=graph protocol=shamir-lead adjacency=star n=6 trials=2 seed=3");
  bool rejected = false;
  EXPECT_EQ(run_spec_invariants(spec, true, &rejected), std::nullopt);
  EXPECT_TRUE(rejected);
}

TEST(FuzzInvariants, ThreadedTranscriptCaptureIsACleanRejection) {
  const ScenarioSpec spec = parse_spec(
      "topology=threaded protocol=basic-lead n=4 trials=2 seed=3 transcripts=1");
  bool rejected = false;
  EXPECT_EQ(run_spec_invariants(spec, true, &rejected), std::nullopt);
  EXPECT_TRUE(rejected);
}

TEST(FuzzRepro, FormatParseRoundTrips) {
  FuzzOptions options;
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    const ScenarioSpec spec = generate_spec(rng, options);
    const std::string line = format_spec(spec);
    EXPECT_EQ(format_spec(parse_spec(line)), line) << line;
  }
}

TEST(FuzzRepro, ParseRejectsMalformedLines) {
  EXPECT_THROW(parse_spec("topology=ring protocol"), std::invalid_argument);
  EXPECT_THROW(parse_spec("topology=ring protocol=x bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("topology=nowhere protocol=x n=4 trials=1 seed=1"),
               std::invalid_argument);
  EXPECT_THROW(parse_spec("topology=ring n=4 trials=1 seed=1"), std::invalid_argument);
}

TEST(FuzzRepro, WindowAndKnobFieldsRoundTrip) {
  const std::string line =
      "topology=ring protocol=phase-async-lead n=16 trials=12 seed=3 "
      "trial_offset=4 trial_count=5 protocol_key=99 param_l=7";
  const ScenarioSpec spec = parse_spec(line);
  EXPECT_EQ(spec.trial_offset, 4u);
  EXPECT_EQ(spec.trial_count, 5u);
  EXPECT_EQ(spec.protocol_key, 99u);
  EXPECT_EQ(spec.param_l, 7);
  EXPECT_EQ(format_spec(parse_spec(format_spec(spec))), format_spec(spec));
}

TEST(FuzzInvariants, WindowedSpecRunsItsWindow) {
  const ScenarioSpec spec = parse_spec(
      "topology=ring protocol=alead-uni n=8 trials=10 seed=11 trial_offset=3 trial_count=4");
  EXPECT_EQ(run_spec_invariants(spec, /*check_determinism=*/true), std::nullopt);
}

TEST(FuzzInvariants, BadWindowIsACleanRejection) {
  const ScenarioSpec spec = parse_spec(
      "topology=ring protocol=alead-uni n=8 trials=4 seed=11 trial_offset=9");
  bool rejected = false;
  EXPECT_EQ(run_spec_invariants(spec, true, &rejected), std::nullopt);
  EXPECT_TRUE(rejected);
}

TEST(FuzzInvariants, OutOfRangeParamLIsACleanRejection) {
  const ScenarioSpec spec = parse_spec(
      "topology=ring protocol=phase-async-lead n=8 trials=2 seed=1 param_l=9");
  bool rejected = false;
  EXPECT_EQ(run_spec_invariants(spec, true, &rejected), std::nullopt);
  EXPECT_TRUE(rejected);
}

TEST(FuzzInvariants, HoldOnAKnownGoodSpec) {
  const ScenarioSpec spec =
      parse_spec("topology=ring protocol=alead-uni n=8 trials=6 seed=11");
  EXPECT_EQ(run_spec_invariants(spec, /*check_determinism=*/true), std::nullopt);
}

TEST(FuzzInvariants, CleanRejectionIsNotAFailure) {
  // Graph-only protocol on a ring: run_scenario must throw
  // std::invalid_argument, which the fuzzer records as a rejection.
  const ScenarioSpec spec =
      parse_spec("topology=ring protocol=shamir-lead n=8 trials=2 seed=1");
  bool rejected = false;
  EXPECT_EQ(run_spec_invariants(spec, true, &rejected), std::nullopt);
  EXPECT_TRUE(rejected);
}

TEST(FuzzShrink, MinimizesAgainstASyntheticOracle) {
  // Synthetic failure: anything with n >= 6 "fails".  The shrinker must
  // walk n down to exactly 6 and strip every irrelevant feature.
  const FuzzOracle oracle = [](const ScenarioSpec& spec) -> std::optional<std::string> {
    if (spec.n >= 6) return "synthetic: n >= 6";
    return std::nullopt;
  };
  ScenarioSpec big;
  big.topology = TopologyKind::kThreaded;
  big.protocol = "alead-uni";
  big.deviation = "rushing";
  big.coalition = CoalitionSpec::equally_spaced(4);
  big.scheduler = SchedulerKind::kRandom;
  big.n = 20;
  big.trials = 12;
  big.seed = 5;
  big.target = 13;
  big.record_outcomes = true;
  big.step_limit = 999;

  const ScenarioSpec shrunk = shrink_spec(big, oracle);
  EXPECT_EQ(shrunk.n, 6);
  EXPECT_TRUE(shrunk.deviation.empty());
  EXPECT_EQ(shrunk.coalition.placement, CoalitionSpec::Placement::kDefault);
  EXPECT_EQ(shrunk.scheduler, SchedulerKind::kRoundRobin);
  EXPECT_EQ(shrunk.topology, TopologyKind::kRing);
  EXPECT_EQ(shrunk.trials, 2u);
  EXPECT_EQ(shrunk.step_limit, 0u);
  EXPECT_EQ(shrunk.target, 0u);
  EXPECT_FALSE(shrunk.record_outcomes);
  EXPECT_TRUE(oracle(shrunk).has_value()) << "shrinking must preserve the failure";
}

TEST(FuzzShrink, KeepsTheDeviationWhenItCausesTheFailure) {
  const FuzzOracle oracle = [](const ScenarioSpec& spec) -> std::optional<std::string> {
    if (!spec.deviation.empty()) return "synthetic: deviation present";
    return std::nullopt;
  };
  ScenarioSpec spec;
  spec.protocol = "basic-lead";
  spec.deviation = "basic-single";
  spec.n = 16;
  spec.trials = 8;
  const ScenarioSpec shrunk = shrink_spec(spec, oracle);
  EXPECT_EQ(shrunk.deviation, "basic-single");
  EXPECT_EQ(shrunk.n, 2);
  EXPECT_EQ(shrunk.trials, 2u);
}

TEST(FuzzCampaign, SmallBudgetRunsClean) {
  FuzzOptions options;
  options.seed = 2026;
  options.specs = 40;
  const FuzzReport report = run_fuzz_campaign(options);
  EXPECT_EQ(report.executed, 40u);
  for (const FuzzFailure& failure : report.failures) {
    ADD_FAILURE() << failure.repro << " — " << failure.reason;
  }
  const CheckReport check = report.as_report();
  EXPECT_TRUE(check.all_passed());
  EXPECT_EQ(check.results.size(), 1u);
}

}  // namespace
}  // namespace fle::verify
