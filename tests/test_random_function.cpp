// The random function f (Section 6): domain handling, determinism,
// statistical behaviour (uniform outputs, avalanche on single entries) and
// the preimage-search behaviour the phase-rushing attack relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/random_function.h"
#include "core/rng.h"

namespace fle {
namespace {

std::vector<Value> random_vector(Xoshiro256& rng, int len, Value bound) {
  std::vector<Value> v(static_cast<std::size_t>(len));
  for (auto& x : v) x = rng.below(bound);
  return v;
}

TEST(RandomFunction, Deterministic) {
  const int n = 16;
  RandomFunction f(42, n, RandomFunction::default_m(n), 4);
  Xoshiro256 rng(1);
  const auto d = random_vector(rng, n, n);
  const auto v = random_vector(rng, n - 4, RandomFunction::default_m(n));
  EXPECT_EQ(f.evaluate(d, v), f.evaluate(d, v));
}

TEST(RandomFunction, KeySeparatesInstances) {
  const int n = 16;
  RandomFunction f1(1, n, 512, 4), f2(2, n, 512, 4);
  Xoshiro256 rng(3);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    const auto d = random_vector(rng, n, n);
    const auto v = random_vector(rng, n - 4, 512);
    if (f1.evaluate(d, v) != f2.evaluate(d, v)) ++differing;
  }
  EXPECT_GT(differing, 150);
}

TEST(RandomFunction, OutputInRange) {
  const int n = 11;
  RandomFunction f(9, n, 242, 3);
  Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    const auto d = random_vector(rng, n, n);
    const auto v = random_vector(rng, n - 3, 242);
    EXPECT_LT(f.evaluate(d, v), static_cast<Value>(n));
  }
}

TEST(RandomFunction, OutputsRoughlyUniform) {
  const int n = 8;
  RandomFunction f(77, n, 128, 2);
  Xoshiro256 rng(6);
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const auto d = random_vector(rng, n, n);
    const auto v = random_vector(rng, n - 2, 128);
    ++counts[f.evaluate(d, v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 8.0, 6.0 * std::sqrt(trials / 8.0));
  }
}

TEST(RandomFunction, SingleEntryAvalanche) {
  // Changing one data entry re-randomizes the output: Pr[same] ~ 1/n.
  const int n = 64;
  RandomFunction f(123, n, RandomFunction::default_m(n), 10);
  Xoshiro256 rng(7);
  int same = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    auto d = random_vector(rng, n, n);
    const auto v = random_vector(rng, n - 10, RandomFunction::default_m(n));
    const Value before = f.evaluate(d, v);
    d[static_cast<std::size_t>(rng.below(n))] ^= 1;
    if (f.evaluate(d, v) == before) ++same;
  }
  EXPECT_LT(same, trials / 16);  // well below coincidence-heavy behaviour
}

TEST(RandomFunction, PositionSensitivity) {
  // Swapping two distinct entries changes the output (inputs are
  // index-bound, not multiset-hashed).
  const int n = 10;
  RandomFunction f(5, n, 200, 2);
  Xoshiro256 rng(8);
  int same = 0;
  for (int i = 0; i < 300; ++i) {
    auto d = random_vector(rng, n, n);
    d[0] = 1;
    d[1] = 2;
    const auto v = random_vector(rng, n - 2, 200);
    const Value before = f.evaluate(d, v);
    std::swap(d[0], d[1]);
    if (f.evaluate(d, v) == before) ++same;
  }
  EXPECT_LT(same, 60);
}

TEST(RandomFunction, PreimageSearchHitsTargets) {
  // The phase-rushing adversary's core step: with 2 free entries and a
  // budget of 8n attempts, a preimage for any target exists w.h.p.
  const int n = 32;
  RandomFunction f(321, n, RandomFunction::default_m(n), 8);
  Xoshiro256 rng(9);
  int hits = 0;
  const int cases = 100;
  for (int c = 0; c < cases; ++c) {
    auto d = random_vector(rng, n, n);
    const auto v = random_vector(rng, n - 8, RandomFunction::default_m(n));
    const Value target = rng.below(n);
    bool hit = false;
    for (std::uint64_t attempt = 0; attempt < 8ull * n && !hit; ++attempt) {
      d[3] = attempt % n;
      d[7] = (attempt / n) % n;
      hit = f.evaluate(d, v) == target;
    }
    hits += hit ? 1 : 0;
  }
  EXPECT_GE(hits, 95);
}

TEST(RandomFunction, DefaultsMatchPaper) {
  EXPECT_EQ(RandomFunction::default_m(100), 20000u);
  EXPECT_EQ(RandomFunction::default_l(100), 99);   // clamped: 10*sqrt(100)=100 >= n
  EXPECT_EQ(RandomFunction::default_l(400), 200);  // unclamped
  EXPECT_EQ(RandomFunction::default_l(10000), 1000);
}

}  // namespace
}  // namespace fle
