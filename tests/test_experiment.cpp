// Experiment runner: trial seeding, determinism, aggregation, factories.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "attacks/basic_single.h"
#include "protocols/basic_lead.h"
#include "protocols/chang_roberts.h"

namespace fle {
namespace {

TEST(Experiment, DeterministicAcrossRuns) {
  BasicLeadProtocol protocol;
  ExperimentConfig config;
  config.n = 8;
  config.trials = 200;
  config.seed = 5;
  const auto a = run_trials(protocol, nullptr, config);
  const auto b = run_trials(protocol, nullptr, config);
  for (Value j = 0; j < 8; ++j) EXPECT_EQ(a.outcomes.count(j), b.outcomes.count(j));
  EXPECT_DOUBLE_EQ(a.mean_messages, b.mean_messages);
}

TEST(Experiment, DifferentSeedsGiveDifferentSamples) {
  BasicLeadProtocol protocol;
  ExperimentConfig a_cfg;
  a_cfg.n = 8;
  a_cfg.trials = 50;
  a_cfg.seed = 5;
  auto b_cfg = a_cfg;
  b_cfg.seed = 6;
  const auto a = run_trials(protocol, nullptr, a_cfg);
  const auto b = run_trials(protocol, nullptr, b_cfg);
  bool identical = true;
  for (Value j = 0; j < 8; ++j) {
    if (a.outcomes.count(j) != b.outcomes.count(j)) identical = false;
  }
  EXPECT_FALSE(identical);
}

TEST(Experiment, MessageStatsMatchProtocol) {
  BasicLeadProtocol protocol;
  ExperimentConfig config;
  config.n = 10;
  config.trials = 20;
  const auto r = run_trials(protocol, nullptr, config);
  EXPECT_DOUBLE_EQ(r.mean_messages, 100.0);
  EXPECT_EQ(r.max_messages, 100u);
}

TEST(Experiment, DeviationIsApplied) {
  BasicLeadProtocol protocol;
  BasicSingleDeviation deviation(8, 3, 6);
  ExperimentConfig config;
  config.n = 8;
  config.trials = 30;
  const auto r = run_trials(protocol, &deviation, config);
  EXPECT_EQ(r.outcomes.count(6), 30u);
}

TEST(Experiment, FactoryVariantRandomizesPerTrial) {
  ExperimentConfig config;
  config.n = 16;
  config.trials = 40;
  const auto r = run_trials_factory(
      [&](std::uint64_t trial_seed) {
        return std::make_unique<ChangRobertsProtocol>(
            ChangRobertsProtocol::random(16, trial_seed));
      },
      nullptr, config);
  EXPECT_EQ(r.outcomes.fails(), 0u);
  // Random permutations move the winner around: at least 2 distinct leaders.
  int distinct = 0;
  for (Value j = 0; j < 16; ++j) distinct += r.outcomes.count(j) > 0 ? 1 : 0;
  EXPECT_GE(distinct, 2);
}

TEST(Experiment, SchedulerKindsAllRun) {
  BasicLeadProtocol protocol;
  for (const auto kind :
       {SchedulerKind::kRoundRobin, SchedulerKind::kRandom, SchedulerKind::kPriority}) {
    ExperimentConfig config;
    config.n = 8;
    config.trials = 10;
    config.scheduler = kind;
    const auto r = run_trials(protocol, nullptr, config);
    EXPECT_EQ(r.outcomes.fails(), 0u);
  }
}

}  // namespace
}  // namespace fle
