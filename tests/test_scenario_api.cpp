// The unified Scenario API: registry round-trips, clear unknown-name
// errors, engine dispatch across every topology, and the parallel trial
// executor's determinism contract (identical outcome counts at 1/4/8
// worker threads).

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "api/parallel.h"
#include "api/registry.h"
#include "api/scenario.h"
#include "protocols/basic_lead.h"

namespace fle {
namespace {

ScenarioSpec ring_spec(const std::string& protocol, int n, std::size_t trials) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kRing;
  spec.protocol = protocol;
  spec.n = n;
  spec.trials = trials;
  spec.seed = 11;
  return spec;
}

TEST(ScenarioRegistry, EveryRegisteredProtocolResolvesByName) {
  register_builtin_scenarios();
  const auto names = ProtocolRegistry::instance().names();
  EXPECT_GE(names.size(), 13u);
  for (const auto& name : names) {
    const ProtocolEntry& entry = ProtocolRegistry::instance().at(name);
    EXPECT_EQ(entry.name, name);
    EXPECT_FALSE(entry.summary.empty()) << name;
    // Every entry supports at least one runtime family.
    EXPECT_TRUE(entry.make_ring || entry.make_graph || entry.make_sync || entry.make_game)
        << name;
  }
}

TEST(ScenarioRegistry, EveryRegisteredDeviationResolvesByName) {
  register_builtin_scenarios();
  const auto names = DeviationRegistry::instance().names();
  EXPECT_GE(names.size(), 15u);
  for (const auto& name : names) {
    const DeviationEntry& entry = DeviationRegistry::instance().at(name);
    EXPECT_EQ(entry.name, name);
    EXPECT_TRUE(entry.make_ring || entry.make_graph || entry.make_sync || entry.make_turn)
        << name;
  }
}

TEST(ScenarioRegistry, UnknownNamesGiveClearErrors) {
  try {
    run_scenario(ring_spec("no-such-protocol", 8, 1));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("no-such-protocol"), std::string::npos);
    EXPECT_NE(message.find("basic-lead"), std::string::npos);  // lists candidates
  }

  auto spec = ring_spec("basic-lead", 8, 1);
  spec.deviation = "no-such-attack";
  try {
    run_scenario(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("no-such-attack"), std::string::npos);
  }
}

TEST(ScenarioRegistry, TopologyMismatchIsRejected) {
  auto spec = ring_spec("shamir-lead", 8, 1);  // graph-only protocol on a ring
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);

  auto sync_spec = ring_spec("basic-lead", 8, 1);
  sync_spec.topology = TopologyKind::kSync;
  EXPECT_THROW(run_scenario(sync_spec), std::invalid_argument);
}

TEST(ScenarioRegistry, DeviationProtocolMismatchIsRejected) {
  auto spec = ring_spec("basic-lead", 16, 1);
  spec.deviation = "phase-rushing";  // needs phase-async-lead
  spec.coalition = CoalitionSpec::equally_spaced(4);
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

TEST(ScenarioRegistry, DuplicateRegistrationIsRejected) {
  register_builtin_scenarios();
  ProtocolEntry entry;
  entry.name = "basic-lead";
  entry.make_ring = [](const ScenarioSpec&, std::uint64_t) {
    return std::make_unique<BasicLeadProtocol>();
  };
  EXPECT_THROW(ProtocolRegistry::instance().add(entry), std::invalid_argument);
}

TEST(ScenarioRegistry, BuiltinCollisionThrowsAtAddAndLeavesRegistryUsable) {
  // Builtin names are reserved even before any lookup has forced lazy
  // registration: add() registers the builtins first, throws on the
  // collision, and every builtin stays resolvable afterwards.
  ProtocolEntry entry;
  entry.name = "peterson";
  entry.make_ring = [](const ScenarioSpec&, std::uint64_t) {
    return std::make_unique<BasicLeadProtocol>();
  };
  EXPECT_THROW(ProtocolRegistry::instance().add(entry), std::invalid_argument);
  EXPECT_TRUE(ProtocolRegistry::instance().contains("basic-lead"));
  EXPECT_TRUE(ProtocolRegistry::instance().contains("peterson"));
  const auto result = run_scenario(ring_spec("alead-uni", 8, 10));
  EXPECT_EQ(result.trials, 10u);
}

TEST(ScenarioRegistry, UserRegisteredProtocolRuns) {
  register_builtin_scenarios();
  if (!ProtocolRegistry::instance().contains("test-custom-lead")) {
    ProtocolEntry entry;
    entry.name = "test-custom-lead";
    entry.summary = "registered by test_scenario_api";
    entry.make_ring = [](const ScenarioSpec&, std::uint64_t) {
      return std::make_unique<BasicLeadProtocol>();
    };
    ProtocolRegistry::instance().add(entry);
  }
  const auto result = run_scenario(ring_spec("test-custom-lead", 8, 20));
  EXPECT_EQ(result.outcomes.fails(), 0u);
  EXPECT_EQ(result.trials, 20u);
}

TEST(RunScenario, HonestRingElectionsSucceed) {
  const auto result = run_scenario(ring_spec("phase-async-lead", 12, 50));
  EXPECT_EQ(result.outcomes.fails(), 0u);
  EXPECT_EQ(result.protocol_name, "PhaseAsyncLead");
  EXPECT_DOUBLE_EQ(result.mean_messages, 2.0 * 12 * 12);
}

TEST(RunScenario, RingDeviationForcesTarget) {
  auto spec = ring_spec("basic-lead", 8, 25);
  spec.deviation = "basic-single";
  spec.coalition = CoalitionSpec::consecutive(1, 3);
  spec.target = 6;
  const auto result = run_scenario(spec);
  EXPECT_EQ(result.outcomes.count(6), 25u);
  EXPECT_EQ(result.deviation_name, "basic-single (Claim B.1)");
}

TEST(RunScenario, GraphTopologyRunsShamir) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kGraph;
  spec.protocol = "shamir-lead";
  spec.n = 8;
  spec.trials = 10;
  const auto result = run_scenario(spec);
  EXPECT_EQ(result.outcomes.fails(), 0u);
  EXPECT_GT(result.mean_messages, 0.0);
}

TEST(RunScenario, SyncTopologyDetectsLateBroadcast) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kSync;
  spec.protocol = "sync-broadcast-lead";
  spec.deviation = "sync-late-broadcast";
  spec.n = 8;
  spec.trials = 10;
  const auto result = run_scenario(spec);
  EXPECT_EQ(result.outcomes.fails(), 10u);  // silence is detected, all FAIL
  EXPECT_GT(result.max_rounds, 0);
}

TEST(RunScenario, ThreadedTopologyMatchesDeterministicEngine) {
  auto det = ring_spec("alead-uni", 8, 6);
  det.record_outcomes = true;
  auto thr = det;
  thr.topology = TopologyKind::kThreaded;
  const auto a = run_scenario(det);
  const auto b = run_scenario(thr);
  ASSERT_EQ(a.per_trial.size(), b.per_trial.size());
  for (std::size_t t = 0; t < a.per_trial.size(); ++t) {
    EXPECT_EQ(a.per_trial[t], b.per_trial[t]) << "trial " << t;
  }
}

TEST(RunScenario, FullInfoTopologyPlaysBaton) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kFullInfo;
  spec.protocol = "baton";
  spec.deviation = "baton-greedy";
  spec.coalition = CoalitionSpec::custom({1, 2, 3, 4});
  spec.target = 7;
  spec.n = 8;
  spec.trials = 200;
  spec.seed = 3;
  const auto result = run_scenario(spec);
  EXPECT_EQ(result.outcomes.fails(), 0u);
  // The greedy coalition beats the honest 1/(n-1) rate for the target.
  EXPECT_GT(result.outcomes.leader_rate(7), 1.0 / 7);
}

TEST(RunScenario, TreeTopologyLastMoverForcesTheCoin) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kTree;
  spec.protocol = "alternating-xor";
  spec.deviation = "xor-last-mover";
  spec.rounds = 4;
  spec.target = 1;
  spec.n = 2;
  spec.trials = 64;
  const auto result = run_scenario(spec);
  EXPECT_EQ(result.outcomes.count(1), 64u);  // wait-then-choose always wins
}

TEST(RunScenario, PerTrialProtocolsRandomizeAcrossTrials) {
  const auto result = run_scenario(ring_spec("chang-roberts", 16, 40));
  EXPECT_EQ(result.outcomes.fails(), 0u);
  int distinct = 0;
  for (Value j = 0; j < 16; ++j) distinct += result.outcomes.count(j) > 0 ? 1 : 0;
  EXPECT_GE(distinct, 2);
}

TEST(ParallelExecutor, TrialSeedsAreStableAndDistinct) {
  EXPECT_EQ(scenario_trial_seed(42, 0), scenario_trial_seed(42, 0));
  EXPECT_NE(scenario_trial_seed(42, 0), scenario_trial_seed(42, 1));
  EXPECT_NE(scenario_trial_seed(42, 0), scenario_trial_seed(43, 0));
}

TEST(ParallelExecutor, TrialSeedStreamIsPinned) {
  // The determinism contract (DESIGN.md §3) makes every recorded result a
  // function of this stream: pin the first 8 seeds of base seed 1 so the
  // mapping cannot silently change.  If this test fails, either revert the
  // change to scenario_trial_seed or accept that every golden value,
  // recorded benchmark and repro line in the repo's history is invalidated.
  const std::uint64_t golden[8] = {
      0xbeeb8da1658eec67ull, 0xf893a2eefb32555eull, 0x71c18690ee42c90bull,
      0x71bb54d8d101b5b9ull, 0xc34d0bff90150280ull, 0xe099ec6cd7363ca5ull,
      0x85e7bb0f12278575ull, 0x491718de357e3da8ull,
  };
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(scenario_trial_seed(1, t), golden[t]) << "trial " << t;
  }
}

TEST(ParallelExecutor, TrialSeedsHaveNoCollisionsOverAMillionTrials) {
  // Trials must get distinct RNG streams: a collision would correlate two
  // trials' executions.  splitmix64's finalizer is a bijection of the
  // golden-gamma walk, so exact collisions are impossible in [0, 2^64)
  // windows this small — assert it over 1M indices for two base seeds.
  for (const std::uint64_t base : {1ull, 0xdecafbadull}) {
    std::vector<std::uint64_t> seeds;
    seeds.reserve(1'000'000);
    for (std::size_t t = 0; t < 1'000'000; ++t) {
      seeds.push_back(scenario_trial_seed(base, t));
    }
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
        << "collision under base seed " << base;
  }
}

TEST(RunScenario, ZeroProcessorsIsRejectedNamingN) {
  for (const int n : {0, 1, -3}) {
    auto spec = ring_spec("basic-lead", n, 1);
    try {
      run_scenario(spec);
      FAIL() << "expected std::invalid_argument for n = " << n;
    } catch (const std::invalid_argument& error) {
      const std::string message = error.what();
      EXPECT_NE(message.find("ScenarioSpec.n"), std::string::npos) << message;
      EXPECT_NE(message.find(std::to_string(n)), std::string::npos) << message;
    }
  }
}

TEST(RunScenario, OversizedCoalitionIsRejectedNamingK) {
  auto spec = ring_spec("basic-lead", 8, 1);
  spec.deviation = "rushing";
  spec.coalition = CoalitionSpec::equally_spaced(9);  // k > n
  try {
    run_scenario(spec);
    FAIL() << "expected std::invalid_argument for k > n";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("coalition.k"), std::string::npos) << message;
    EXPECT_NE(message.find("k = 9"), std::string::npos) << message;
  }
  // k = n (no honest processor left) and k = 0 are equally invalid.
  spec.coalition = CoalitionSpec::consecutive(8);
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
  spec.coalition = CoalitionSpec::consecutive(0);
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

TEST(RunScenario, CustomCoalitionMemberOutOfRangeIsRejectedNamingMembers) {
  auto spec = ring_spec("basic-lead", 8, 1);
  spec.deviation = "basic-single";
  spec.coalition = CoalitionSpec::custom({8});  // valid ids are 0..7
  try {
    run_scenario(spec);
    FAIL() << "expected std::invalid_argument for member out of range";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("coalition.members[0]"), std::string::npos) << message;
    EXPECT_NE(message.find("= 8"), std::string::npos) << message;
  }
  spec.coalition = CoalitionSpec::custom({3, -1});
  try {
    run_scenario(spec);
    FAIL() << "expected std::invalid_argument for negative member";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("coalition.members[1]"), std::string::npos);
  }
}

TEST(RunScenario, SpecValidationFiresBeforeFactories) {
  // Even with an unknown deviation key, the plain-field validation runs
  // first, so the user is pointed at the bad field rather than a registry
  // miss caused by it.
  ScenarioSpec spec;
  spec.protocol = "basic-lead";
  spec.deviation = "no-such-attack";
  spec.n = 0;
  spec.trials = 1;
  try {
    run_scenario(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("ScenarioSpec.n"), std::string::npos);
  }
}

TEST(ParallelExecutor, WorkerExceptionsPropagate) {
  EXPECT_THROW(run_trials_parallel(16, 4, 1,
                                   [](std::size_t trial, std::uint64_t) -> TrialStats {
                                     if (trial == 7) throw std::runtime_error("boom");
                                     return {};
                                   }),
               std::runtime_error);
}

/// The acceptance-criterion determinism test: identical outcome counters
/// for worker counts 1, 4 and 8 on the same spec.
TEST(ParallelExecutor, OutcomeCountsIdenticalAcross148Threads) {
  ScenarioSpec base = ring_spec("phase-async-lead", 16, 120);
  base.deviation = "phase-rushing";
  base.coalition = CoalitionSpec::equally_spaced(7);
  base.target = 5;
  base.search_cap = 64 * 16;

  auto one = base;
  one.threads = 1;
  auto four = base;
  four.threads = 4;
  auto eight = base;
  eight.threads = 8;

  const auto a = run_scenario(one);
  const auto b = run_scenario(four);
  const auto c = run_scenario(eight);
  ASSERT_EQ(a.trials, b.trials);
  ASSERT_EQ(a.trials, c.trials);
  EXPECT_EQ(a.outcomes.fails(), b.outcomes.fails());
  EXPECT_EQ(a.outcomes.fails(), c.outcomes.fails());
  for (Value j = 0; j < 16; ++j) {
    EXPECT_EQ(a.outcomes.count(j), b.outcomes.count(j)) << "leader " << j;
    EXPECT_EQ(a.outcomes.count(j), c.outcomes.count(j)) << "leader " << j;
  }
  EXPECT_DOUBLE_EQ(a.mean_messages, b.mean_messages);
  EXPECT_DOUBLE_EQ(a.mean_messages, c.mean_messages);
  EXPECT_DOUBLE_EQ(a.mean_sync_gap, c.mean_sync_gap);
  EXPECT_EQ(a.max_sync_gap, c.max_sync_gap);
}

TEST(ParallelExecutor, HonestSweepDeterministicAcrossThreadCounts) {
  auto one = ring_spec("alead-uni", 24, 300);
  one.threads = 1;
  auto eight = one;
  eight.threads = 8;
  const auto a = run_scenario(one);
  const auto b = run_scenario(eight);
  for (Value j = 0; j < 24; ++j) EXPECT_EQ(a.outcomes.count(j), b.outcomes.count(j));
}

}  // namespace
}  // namespace fle
