// Schedulers: pick semantics, and the paper's §2 claim that on a
// unidirectional ring all oblivious schedules yield identical outcomes.

#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "protocols/alead_uni.h"
#include "protocols/basic_lead.h"
#include "protocols/phase_async_lead.h"
#include "sim/scheduler.h"

namespace fle {
namespace {

TEST(Scheduler, RoundRobinRotates) {
  RoundRobinScheduler s;
  const std::vector<ProcessorId> ready{3, 5, 9};
  EXPECT_EQ(s.pick(ready), 3);
  EXPECT_EQ(s.pick(ready), 5);
  EXPECT_EQ(s.pick(ready), 9);
  EXPECT_EQ(s.pick(ready), 3);
}

TEST(Scheduler, PriorityPicksLowestRank) {
  PriorityScheduler s({2, 0, 1});
  const std::vector<ProcessorId> all{0, 1, 2};
  EXPECT_EQ(s.pick(all), 1);
  const std::vector<ProcessorId> pair{0, 2};
  EXPECT_EQ(s.pick(pair), 2);
}

TEST(Scheduler, RandomIsSeededAndInRange) {
  RandomScheduler a(5), b(5);
  const std::vector<ProcessorId> ready{1, 4, 6, 8};
  for (int i = 0; i < 50; ++i) {
    const ProcessorId pa = a.pick(ready);
    EXPECT_EQ(pa, b.pick(ready));
    EXPECT_TRUE(pa == 1 || pa == 4 || pa == 6 || pa == 8);
  }
}

/// Paper §2: on a unidirectional ring every processor has a single incoming
/// FIFO link, so all (oblivious) schedules produce the same local
/// computations.  Verify outcome equality across schedulers, trial by trial.
class ScheduleInvariance : public ::testing::TestWithParam<SchedulerKind> {};

TEST_P(ScheduleInvariance, ALeadOutcomeIndependentOfSchedule) {
  const int n = 12;
  ALeadUniProtocol protocol;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    EngineOptions base;
    RingEngine ref(n, seed);
    std::vector<std::unique_ptr<RingStrategy>> s1;
    for (ProcessorId p = 0; p < n; ++p) s1.push_back(protocol.make_strategy(p, n));
    const Outcome expected = ref.run(std::move(s1));

    EngineOptions options;
    options.scheduler = make_scheduler(GetParam(), n, seed + 1000);
    RingEngine engine(n, seed, std::move(options));
    std::vector<std::unique_ptr<RingStrategy>> s2;
    for (ProcessorId p = 0; p < n; ++p) s2.push_back(protocol.make_strategy(p, n));
    EXPECT_EQ(engine.run(std::move(s2)), expected) << "seed=" << seed;
  }
}

TEST_P(ScheduleInvariance, PhaseOutcomeIndependentOfSchedule) {
  const int n = 9;
  PhaseAsyncLeadProtocol protocol(n, 0xf00ull);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    RingEngine ref(n, seed);
    std::vector<std::unique_ptr<RingStrategy>> s1;
    for (ProcessorId p = 0; p < n; ++p) s1.push_back(protocol.make_strategy(p, n));
    const Outcome expected = ref.run(std::move(s1));

    EngineOptions options;
    options.scheduler = make_scheduler(GetParam(), n, seed + 2000);
    RingEngine engine(n, seed, std::move(options));
    std::vector<std::unique_ptr<RingStrategy>> s2;
    for (ProcessorId p = 0; p < n; ++p) s2.push_back(protocol.make_strategy(p, n));
    EXPECT_EQ(engine.run(std::move(s2)), expected) << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ScheduleInvariance,
                         ::testing::Values(SchedulerKind::kRoundRobin,
                                           SchedulerKind::kRandom,
                                           SchedulerKind::kPriority));

}  // namespace
}  // namespace fle
