// Threaded runtime: real threads + blocking queues must reproduce the
// deterministic engine's outcomes on the ring (paper §2: all oblivious
// schedules agree), detect quiescence, and survive attacks.

#include <gtest/gtest.h>

#include "attacks/basic_single.h"
#include "attacks/coalition.h"
#include "attacks/cubic.h"
#include "attacks/deviation.h"
#include "protocols/alead_uni.h"
#include "protocols/basic_lead.h"
#include "protocols/phase_async_lead.h"
#include "sim/engine.h"
#include "sim/threaded_runtime.h"

namespace fle {
namespace {

TEST(Threaded, BasicLeadMatchesDeterministicEngine) {
  const int n = 8;
  BasicLeadProtocol protocol;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Outcome expected = run_honest(protocol, n, seed);
    const Outcome actual = run_honest_threaded(protocol, n, seed);
    EXPECT_EQ(actual, expected) << "seed=" << seed;
  }
}

TEST(Threaded, ALeadMatchesDeterministicEngine) {
  const int n = 10;
  ALeadUniProtocol protocol;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_EQ(run_honest_threaded(protocol, n, seed), run_honest(protocol, n, seed));
  }
}

TEST(Threaded, PhaseAsyncLeadMatchesDeterministicEngine) {
  const int n = 9;
  PhaseAsyncLeadProtocol protocol(n, 0x71ull);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    EXPECT_EQ(run_honest_threaded(protocol, n, seed), run_honest(protocol, n, seed));
  }
}

TEST(Threaded, LargeRingStress) {
  const int n = 128;
  PhaseAsyncLeadProtocol protocol(n, 0x99ull);
  const Outcome o = run_honest_threaded(protocol, n, 4242);
  ASSERT_TRUE(o.valid());
  EXPECT_EQ(o, run_honest(protocol, n, 4242));
}

TEST(Threaded, MessageCountsMatch) {
  const int n = 12;
  ALeadUniProtocol protocol;
  ThreadedRuntime runtime(n, 7);
  std::vector<std::unique_ptr<RingStrategy>> s;
  for (ProcessorId p = 0; p < n; ++p) s.push_back(protocol.make_strategy(p, n));
  ASSERT_TRUE(runtime.run(std::move(s)).valid());
  EXPECT_EQ(runtime.stats().total_sent, static_cast<std::uint64_t>(n) * n);
}

TEST(Threaded, QuiescenceDetectedOnSilentRing) {
  class Silent final : public RingStrategy {
    void on_receive(RingContext&, Value) override {}
  };
  ThreadedRuntime runtime(4, 1);
  std::vector<std::unique_ptr<RingStrategy>> s;
  for (int i = 0; i < 4; ++i) s.push_back(std::make_unique<Silent>());
  const Outcome o = runtime.run(std::move(s));
  EXPECT_TRUE(o.failed());
  EXPECT_TRUE(runtime.stats().quiesced);
  EXPECT_FALSE(runtime.stats().wall_timeout_hit);
}

TEST(Threaded, QuiescenceDetectedMidProtocol) {
  // One processor swallows everything: the ring stalls and must be stopped.
  const int n = 6;
  ALeadUniProtocol protocol;
  class BlackHole final : public RingStrategy {
    void on_receive(RingContext&, Value) override {}
  };
  ThreadedRuntime runtime(n, 3);
  std::vector<std::unique_ptr<RingStrategy>> s;
  for (ProcessorId p = 0; p < n; ++p) {
    if (p == 2) {
      s.push_back(std::make_unique<BlackHole>());
    } else {
      s.push_back(protocol.make_strategy(p, n));
    }
  }
  const Outcome o = runtime.run(std::move(s));
  EXPECT_TRUE(o.failed());
  EXPECT_TRUE(runtime.stats().quiesced);
}

TEST(Threaded, SendLimitStopsRunaways) {
  class PingPong final : public RingStrategy {
   public:
    void on_init(RingContext& ctx) override { ctx.send(0); }
    void on_receive(RingContext& ctx, Value v) override { ctx.send(v + 1); }
  };
  ThreadedRuntimeOptions options;
  options.send_limit = 200;
  ThreadedRuntime runtime(2, 1, options);
  std::vector<std::unique_ptr<RingStrategy>> s;
  s.push_back(std::make_unique<PingPong>());
  s.push_back(std::make_unique<PingPong>());
  const Outcome o = runtime.run(std::move(s));
  EXPECT_TRUE(o.failed());
  EXPECT_TRUE(runtime.stats().send_limit_hit);
}

TEST(Threaded, AttacksWorkOnRealThreads) {
  {
    const int n = 9;
    BasicLeadProtocol protocol;
    BasicSingleDeviation deviation(n, 4, 2);
    ThreadedRuntime runtime(n, 11);
    const Outcome o = runtime.run(compose_strategies(protocol, &deviation, n));
    ASSERT_TRUE(o.valid());
    EXPECT_EQ(o.leader(), 2u);
  }
  {
    const int n = 60;
    ALeadUniProtocol protocol;
    const int k = Coalition::cubic_min_k(n);
    CubicDeviation deviation(Coalition::cubic_staircase(n, k), 7);
    ThreadedRuntime runtime(n, 12);
    const Outcome o = runtime.run(compose_strategies(protocol, &deviation, n));
    ASSERT_TRUE(o.valid());
    EXPECT_EQ(o.leader(), 7u);
  }
}

}  // namespace
}  // namespace fle
