// Statistics helpers: counters, intervals, chi-square machinery.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "analysis/stats.h"

namespace fle {
namespace {

TEST(OutcomeCounter, CountsAndRates) {
  OutcomeCounter c(4);
  c.record(Outcome::elected(0));
  c.record(Outcome::elected(0));
  c.record(Outcome::elected(3));
  c.record(Outcome::fail());
  EXPECT_EQ(c.trials(), 4u);
  EXPECT_EQ(c.fails(), 1u);
  EXPECT_EQ(c.count(0), 2u);
  EXPECT_EQ(c.count(1), 0u);
  EXPECT_DOUBLE_EQ(c.fail_rate(), 0.25);
  EXPECT_DOUBLE_EQ(c.leader_rate(0), 0.5);
}

TEST(OutcomeCounter, MaxBiasAgainstUniform) {
  OutcomeCounter c(2);
  for (int i = 0; i < 9; ++i) c.record(Outcome::elected(0));
  c.record(Outcome::elected(1));
  EXPECT_NEAR(c.max_bias(), 0.9 - 0.5, 1e-12);
}

TEST(OutcomeCounter, ChiSquareDetectsSkew) {
  OutcomeCounter uniform(4), skewed(4);
  for (int i = 0; i < 4000; ++i) {
    uniform.record(Outcome::elected(static_cast<Value>(i % 4)));
    skewed.record(Outcome::elected(static_cast<Value>(i % 2)));
  }
  EXPECT_LT(uniform.chi_square_uniform(), chi_square_critical_999(3));
  EXPECT_GT(skewed.chi_square_uniform(), chi_square_critical_999(3));
}

TEST(Stats, HoeffdingRadiusShrinks) {
  const double r100 = hoeffding_radius(100, 0.01);
  const double r10000 = hoeffding_radius(10000, 0.01);
  EXPECT_GT(r100, r10000);
  EXPECT_NEAR(r10000, std::sqrt(std::log(200.0) / 20000.0), 1e-12);
}

TEST(Stats, WilsonIntervalCoversPointEstimate) {
  const auto iv = wilson_interval(30, 100);
  EXPECT_LT(iv.lo, 0.3);
  EXPECT_GT(iv.hi, 0.3);
  EXPECT_GT(iv.lo, 0.19);
  EXPECT_LT(iv.hi, 0.42);
}

TEST(Stats, WilsonDegenerateCases) {
  const auto none = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(none.lo, std::min(none.lo, 0.01));
  const auto all = wilson_interval(50, 50);
  EXPECT_GT(all.hi, 0.99);
  const auto empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
}

TEST(Stats, ChiSquareCriticalGrowsWithDof) {
  EXPECT_GT(chi_square_critical_999(10), chi_square_critical_999(3));
  // Known value: chi2_{0.999, 10} ~ 29.6.
  EXPECT_NEAR(chi_square_critical_999(10), 29.6, 1.0);
}

// Degenerate inputs the verify subsystem can produce (empty samples, a
// one-cell support, out-of-range leader queries) must give well-defined
// answers, not divisions by zero or out-of-bounds reads.

TEST(Stats, HoeffdingDegenerateInputsAreVacuous) {
  EXPECT_DOUBLE_EQ(hoeffding_radius(0, 0.05), 1.0);   // no samples
  EXPECT_DOUBLE_EQ(hoeffding_radius(0, 0.0), 1.0);    // no samples, alpha 0
  EXPECT_DOUBLE_EQ(hoeffding_radius(100, 0.0), 1.0);  // certainty demanded
  EXPECT_DOUBLE_EQ(hoeffding_radius(100, -1.0), 1.0);
  // Tiny samples at tiny alpha: the radius is clamped to the trivial bound
  // for a [0,1]-valued mean instead of exceeding it.
  EXPECT_LE(hoeffding_radius(1, 0.001), 1.0);
  EXPECT_TRUE(std::isfinite(hoeffding_radius(1, 0.001)));
}

TEST(Stats, ChiSquareCriticalDegenerateDof) {
  EXPECT_DOUBLE_EQ(chi_square_critical_999(0), 0.0);
  EXPECT_DOUBLE_EQ(chi_square_critical_999(-4), 0.0);
  EXPECT_TRUE(std::isfinite(chi_square_critical_999(1)));
}

TEST(OutcomeCounter, CountBoundsChecksLeaderValue) {
  OutcomeCounter c(4);
  c.record(Outcome::elected(2));
  EXPECT_EQ(c.count(2), 1u);
  EXPECT_EQ(c.count(4), 0u);   // one past the domain
  EXPECT_EQ(c.count(~0ull), 0u);
  EXPECT_DOUBLE_EQ(c.leader_rate(4), 0.0);
  EXPECT_DOUBLE_EQ(c.leader_rate(~0ull), 0.0);
}

TEST(OutcomeCounter, RecordRejectsOutOfRangeLeaders) {
  // Engines can never hand the counter an out-of-range leader
  // (aggregate_outcome maps those to FAIL); a buggy caller must be flagged
  // loudly — in every build type — rather than corrupt the histogram.  The
  // type must NOT be invalid_argument: the fuzzer reads that as a clean
  // spec rejection, and this guard exists to be seen by the fuzzer.
  OutcomeCounter c(4);
  EXPECT_THROW(c.record(Outcome::elected(4)), std::out_of_range);
  EXPECT_THROW(c.record(Outcome::elected(~0ull)), std::out_of_range);
  EXPECT_EQ(c.trials(), 0u);  // rejected records leave the counter untouched
  c.record(Outcome::fail());  // FAIL carries no leader: always fine
  EXPECT_EQ(c.fails(), 1u);
}

}  // namespace
}  // namespace fle
