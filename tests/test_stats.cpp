// Statistics helpers: counters, intervals, chi-square machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stats.h"

namespace fle {
namespace {

TEST(OutcomeCounter, CountsAndRates) {
  OutcomeCounter c(4);
  c.record(Outcome::elected(0));
  c.record(Outcome::elected(0));
  c.record(Outcome::elected(3));
  c.record(Outcome::fail());
  EXPECT_EQ(c.trials(), 4u);
  EXPECT_EQ(c.fails(), 1u);
  EXPECT_EQ(c.count(0), 2u);
  EXPECT_EQ(c.count(1), 0u);
  EXPECT_DOUBLE_EQ(c.fail_rate(), 0.25);
  EXPECT_DOUBLE_EQ(c.leader_rate(0), 0.5);
}

TEST(OutcomeCounter, MaxBiasAgainstUniform) {
  OutcomeCounter c(2);
  for (int i = 0; i < 9; ++i) c.record(Outcome::elected(0));
  c.record(Outcome::elected(1));
  EXPECT_NEAR(c.max_bias(), 0.9 - 0.5, 1e-12);
}

TEST(OutcomeCounter, ChiSquareDetectsSkew) {
  OutcomeCounter uniform(4), skewed(4);
  for (int i = 0; i < 4000; ++i) {
    uniform.record(Outcome::elected(static_cast<Value>(i % 4)));
    skewed.record(Outcome::elected(static_cast<Value>(i % 2)));
  }
  EXPECT_LT(uniform.chi_square_uniform(), chi_square_critical_999(3));
  EXPECT_GT(skewed.chi_square_uniform(), chi_square_critical_999(3));
}

TEST(Stats, HoeffdingRadiusShrinks) {
  const double r100 = hoeffding_radius(100, 0.01);
  const double r10000 = hoeffding_radius(10000, 0.01);
  EXPECT_GT(r100, r10000);
  EXPECT_NEAR(r10000, std::sqrt(std::log(200.0) / 20000.0), 1e-12);
}

TEST(Stats, WilsonIntervalCoversPointEstimate) {
  const auto iv = wilson_interval(30, 100);
  EXPECT_LT(iv.lo, 0.3);
  EXPECT_GT(iv.hi, 0.3);
  EXPECT_GT(iv.lo, 0.19);
  EXPECT_LT(iv.hi, 0.42);
}

TEST(Stats, WilsonDegenerateCases) {
  const auto none = wilson_interval(0, 50);
  EXPECT_DOUBLE_EQ(none.lo, std::min(none.lo, 0.01));
  const auto all = wilson_interval(50, 50);
  EXPECT_GT(all.hi, 0.99);
  const auto empty = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(empty.lo, 0.0);
  EXPECT_DOUBLE_EQ(empty.hi, 1.0);
}

TEST(Stats, ChiSquareCriticalGrowsWithDof) {
  EXPECT_GT(chi_square_critical_999(10), chi_square_critical_999(3));
  // Known value: chi2_{0.999, 10} ~ 29.6.
  EXPECT_NEAR(chi_square_critical_999(10), 29.6, 1.0);
}

}  // namespace
}  // namespace fle
