// X1 (the headline comparison): attack success vs coalition size k for
// A-LEADuni and PhaseAsyncLead on the same ring.  A-LEADuni's crossover
// sits at k ~ 2 n^(1/3) (cubic attack); PhaseAsyncLead's at k ~ sqrt(n)
// (free-slot steering): the paper's improvement made quantitative.
//
// Every (protocol, k) cell runs in ONE sweep (Harness::run_sweep).

#include <cstdio>
#include <string>
#include <vector>

#include "attacks/coalition.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  const int n = 343;  // 7^3: cubic threshold ~ 13, sqrt threshold ~ 19
  bench::Harness h("x1", "X1 / crossover figure",
                   "Attack success vs k at n = 343 (cubic root 7, sqrt 18.5)",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header("    k   A-LEADuni Pr[w]   PhaseAsyncLead Pr[w]   (w = 100)");

  const Value w = 100;
  const std::vector<int> ks = {4, 8, 10, 12, 13, 14, 16, 18, 20, 22, 26, 30};
  struct Row {
    int k;
    std::size_t alead_index = static_cast<std::size_t>(-1);  ///< -1 = not applicable
    std::size_t phase_index = 0;
  };
  std::vector<Row> rows;
  SweepSpec sweep;
  std::vector<std::string> labels;
  for (const int k : ks) {
    Row row{k};
    // A-LEADuni: the strongest applicable attack at this k is the cubic
    // staircase (falls back to "not applicable" below its threshold).
    if (k >= Coalition::cubic_min_k(n)) {
      ScenarioSpec spec;
      spec.protocol = "alead-uni";
      spec.deviation = "cubic";
      spec.coalition = CoalitionSpec::cubic_staircase(k);
      spec.target = w;
      spec.n = n;
      spec.trials = 15;
      spec.seed = 1000 + k;
      row.alead_index = sweep.scenarios.size();
      sweep.add(spec);
      labels.emplace_back("alead-cubic");
    }
    // PhaseAsyncLead: rushing + steering (gains nothing without free slots).
    ScenarioSpec spec;
    spec.protocol = "phase-async-lead";
    spec.protocol_key = 0xc805ull;
    spec.deviation = "phase-rushing";
    spec.coalition = CoalitionSpec::equally_spaced(k);
    spec.target = w;
    spec.search_cap = 64ull * n;
    spec.n = n;
    spec.trials = 15;
    spec.seed = 2000 + k;
    row.phase_index = sweep.scenarios.size();
    sweep.add(spec);
    labels.emplace_back("phase-rushing");
    rows.push_back(row);
  }
  const auto results = h.run_sweep(sweep, labels);

  for (const Row& row : rows) {
    const double alead_rate = row.alead_index != static_cast<std::size_t>(-1)
                                  ? results[row.alead_index].outcomes.leader_rate(w)
                                  : 0.0;
    const double phase_rate = results[row.phase_index].outcomes.leader_rate(w);
    std::printf("%5d   %15.3f   %20.3f\n", row.k, alead_rate, phase_rate);
  }
  h.note("expected shape: A-LEADuni column jumps to 1 at k ~ 13 (= cubic_min_k),");
  h.note("PhaseAsyncLead column jumps at k ~ 19+ (sqrt(n)): the protocol buys");
  h.note("a polynomially wider resilience band, exactly the paper's contribution");
  return 0;
}
