// X1 (the headline comparison): attack success vs coalition size k for
// A-LEADuni and PhaseAsyncLead on the same ring.  A-LEADuni's crossover
// sits at k ~ 2 n^(1/3) (cubic attack); PhaseAsyncLead's at k ~ sqrt(n)
// (free-slot steering): the paper's improvement made quantitative.

#include <cmath>
#include <cstdio>

#include "analysis/experiment.h"
#include "attacks/coalition.h"
#include "attacks/cubic.h"
#include "attacks/phase_rushing.h"
#include "bench_util.h"
#include "protocols/alead_uni.h"
#include "protocols/phase_async_lead.h"

int main() {
  using namespace fle;
  const int n = 343;  // 7^3: cubic threshold ~ 13, sqrt threshold ~ 19
  bench::title("X1 / crossover figure",
               "Attack success vs k at n = 343 (cubic root 7, sqrt 18.5)");
  bench::row_header("    k   A-LEADuni Pr[w]   PhaseAsyncLead Pr[w]   (w = 100)");

  ALeadUniProtocol alead;
  PhaseAsyncLeadProtocol phase(n, 0xc805ull);
  const Value w = 100;

  for (const int k : {4, 8, 10, 12, 13, 14, 16, 18, 20, 22, 26, 30}) {
    // A-LEADuni: the strongest applicable attack at this k is the cubic
    // staircase (falls back to "not applicable" below its threshold).
    double alead_rate = 0.0;
    if (k >= Coalition::cubic_min_k(n)) {
      CubicDeviation dev(Coalition::cubic_staircase(n, k), w);
      ExperimentConfig cfg;
      cfg.n = n;
      cfg.trials = 15;
      cfg.seed = 1000 + k;
      alead_rate = run_trials(alead, &dev, cfg).outcomes.leader_rate(w);
    }
    // PhaseAsyncLead: rushing + steering (gains nothing without free slots).
    PhaseRushingDeviation dev(Coalition::equally_spaced(n, k), w, phase, 64ull * n);
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.trials = 15;
    cfg.seed = 2000 + k;
    const double phase_rate = run_trials(phase, &dev, cfg).outcomes.leader_rate(w);
    std::printf("%5d   %15.3f   %20.3f\n", k, alead_rate, phase_rate);
  }
  bench::note("expected shape: A-LEADuni column jumps to 1 at k ~ 13 (= cubic_min_k),");
  bench::note("PhaseAsyncLead column jumps at k ~ 19+ (sqrt(n)): the protocol buys");
  bench::note("a polynomially wider resilience band, exactly the paper's contribution");
  return 0;
}
