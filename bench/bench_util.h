#pragma once
// Shared table formatting for the experiment benches.  Every bench binary
// regenerates one table/figure from EXPERIMENTS.md: it prints the paper's
// predicted behaviour next to the measured rows so the comparison is
// visible in raw bench output.

#include <cstdio>
#include <string>

namespace fle::bench {

inline void title(const std::string& id, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", id.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void note(const std::string& text) { std::printf("-- %s\n", text.c_str()); }

inline void row_header(const std::string& cols) {
  std::printf("%s\n", cols.c_str());
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace fle::bench
