// E12: the price of fairness.  Rational-resilient protocols cost Theta(n^2)
// messages; classical (non-fault-tolerant) election costs Theta(n log n).
//
// All 30 (protocol, n) cells run as ONE sweep (Harness::run_sweep).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e12", "E12 / message complexity",
                   "Fair-vs-classical: Theta(n^2) is the price of rational resilience",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header(
      "     n   Basic-LEAD   A-LEADuni   PhaseAsync   ChangRoberts(avg)   Peterson(max)   n^2      n*log2(n)");

  const std::vector<int> sizes = {16, 32, 64, 128, 256, 512};
  // Row layout per n: basic-lead, alead-uni, phase-async-lead (5 trials),
  // then the per-trial-randomized classical baselines (25 trials).
  const std::vector<const char*> fair = {"basic-lead", "alead-uni", "phase-async-lead"};
  const std::vector<const char*> classical = {"chang-roberts", "peterson"};
  SweepSpec sweep;
  for (const int n : sizes) {
    for (const char* protocol : fair) {
      ScenarioSpec spec;
      spec.protocol = protocol;
      spec.protocol_key = 0xabull;
      spec.n = n;
      spec.trials = 5;
      spec.seed = n;
      sweep.add(spec);
    }
    for (const char* protocol : classical) {
      ScenarioSpec spec;
      spec.protocol = protocol;  // per-trial id permutations
      spec.n = n;
      spec.trials = 25;
      spec.seed = n;
      sweep.add(spec);
    }
  }
  const auto results = h.run_sweep(sweep);

  const std::size_t per_n = fair.size() + classical.size();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const int n = sizes[i];
    const ScenarioResult& basic_r = results[per_n * i];
    const ScenarioResult& alead_r = results[per_n * i + 1];
    const ScenarioResult& phase_r = results[per_n * i + 2];
    const ScenarioResult& cr = results[per_n * i + 3];
    const ScenarioResult& pet = results[per_n * i + 4];
    std::printf("%6d   %10.0f   %9.0f   %10.0f   %17.1f   %13llu   %7d   %9.1f\n", n,
                basic_r.mean_messages, alead_r.mean_messages, phase_r.mean_messages,
                cr.mean_messages, static_cast<unsigned long long>(pet.max_messages), n * n,
                n * std::log2(static_cast<double>(n)));
  }
  h.note("expected shape: fair columns track n^2 (PhaseAsync = 2n^2); classical track n log n");
  return 0;
}
