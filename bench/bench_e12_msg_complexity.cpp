// E12: the price of fairness.  Rational-resilient protocols cost Theta(n^2)
// messages; classical (non-fault-tolerant) election costs Theta(n log n).

#include <cmath>
#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e12", "E12 / message complexity",
                   "Fair-vs-classical: Theta(n^2) is the price of rational resilience",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header(
      "     n   Basic-LEAD   A-LEADuni   PhaseAsync   ChangRoberts(avg)   Peterson(max)   n^2      n*log2(n)");

  for (const int n : {16, 32, 64, 128, 256, 512}) {
    const auto fair = [&](const char* protocol) {
      ScenarioSpec spec;
      spec.protocol = protocol;
      spec.protocol_key = 0xabull;
      spec.n = n;
      spec.trials = 5;
      spec.seed = n;
      return h.run(spec);
    };
    const auto classical = [&](const char* protocol) {
      ScenarioSpec spec;
      spec.protocol = protocol;  // per-trial id permutations
      spec.n = n;
      spec.trials = 25;
      spec.seed = n;
      return h.run(spec);
    };
    const auto basic_r = fair("basic-lead");
    const auto alead_r = fair("alead-uni");
    const auto phase_r = fair("phase-async-lead");
    const auto cr = classical("chang-roberts");
    const auto pet = classical("peterson");

    std::printf("%6d   %10.0f   %9.0f   %10.0f   %17.1f   %13llu   %7d   %9.1f\n", n,
                basic_r.mean_messages, alead_r.mean_messages, phase_r.mean_messages,
                cr.mean_messages, static_cast<unsigned long long>(pet.max_messages), n * n,
                n * std::log2(static_cast<double>(n)));
  }
  h.note("expected shape: fair columns track n^2 (PhaseAsync = 2n^2); classical track n log n");
  return 0;
}
