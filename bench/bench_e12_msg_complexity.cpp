// E12: the price of fairness.  Rational-resilient protocols cost Theta(n^2)
// messages; classical (non-fault-tolerant) election costs Theta(n log n).

#include <cmath>
#include <cstdio>

#include "analysis/experiment.h"
#include "bench_util.h"
#include "protocols/alead_uni.h"
#include "protocols/basic_lead.h"
#include "protocols/chang_roberts.h"
#include "protocols/peterson.h"
#include "protocols/phase_async_lead.h"

int main() {
  using namespace fle;
  bench::title("E12 / message complexity",
               "Fair-vs-classical: Theta(n^2) is the price of rational resilience");
  bench::row_header(
      "     n   Basic-LEAD   A-LEADuni   PhaseAsync   ChangRoberts(avg)   Peterson(max)   n^2      n*log2(n)");

  for (const int n : {16, 32, 64, 128, 256, 512}) {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.trials = 5;
    cfg.seed = n;

    BasicLeadProtocol basic;
    const auto basic_r = run_trials(basic, nullptr, cfg);
    ALeadUniProtocol alead;
    const auto alead_r = run_trials(alead, nullptr, cfg);
    PhaseAsyncLeadProtocol phase(n, 0xabull);
    const auto phase_r = run_trials(phase, nullptr, cfg);

    ExperimentConfig classical_cfg;
    classical_cfg.n = n;
    classical_cfg.trials = 25;
    classical_cfg.seed = n;
    const auto cr = run_trials_factory(
        [&](std::uint64_t s) {
          return std::make_unique<ChangRobertsProtocol>(ChangRobertsProtocol::random(n, s));
        },
        nullptr, classical_cfg);
    const auto pet = run_trials_factory(
        [&](std::uint64_t s) {
          return std::make_unique<PetersonProtocol>(PetersonProtocol::random(n, s));
        },
        nullptr, classical_cfg);

    std::printf("%6d   %10.0f   %9.0f   %10.0f   %17.1f   %13llu   %7d   %9.1f\n", n,
                basic_r.mean_messages, alead_r.mean_messages, phase_r.mean_messages,
                cr.mean_messages, static_cast<unsigned long long>(pet.max_messages), n * n,
                n * std::log2(static_cast<double>(n)));
  }
  bench::note("expected shape: fair columns track n^2 (PhaseAsync = 2n^2); classical track n log n");
  return 0;
}
