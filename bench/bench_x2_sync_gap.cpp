// X2 (Lemmas D.3/D.5, Section 6): synchronization gaps.  Honest A-LEADuni
// runs in lock-step (gap 1); the cubic attack desynchronizes by Theta(k^2)
// — exactly the slack Theorem 5.1's proof bounds; PhaseAsyncLead's phase
// validation pins everyone to O(k) even under attack.

#include <cstdio>

#include "analysis/experiment.h"
#include "attacks/coalition.h"
#include "attacks/cubic.h"
#include "attacks/phase_rushing.h"
#include "attacks/phase_sum_attack.h"
#include "bench_util.h"
#include "protocols/alead_uni.h"
#include "protocols/phase_async_lead.h"
#include "protocols/phase_sum_lead.h"
#include "sim/trace.h"

int main() {
  using namespace fle;
  bench::title("X2 / synchronization gaps",
               "max_t (max_i Sent_i - min_i Sent_i): who stays synchronized?");
  bench::row_header("      scenario                  n     k    max gap    k^2    2k");

  const auto run_gap = [](const RingProtocol& proto, const Deviation* dev, int n,
                          std::uint64_t seed) {
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.trials = 5;
    cfg.seed = seed;
    return run_trials(proto, dev, cfg).max_sync_gap;
  };

  for (const int n : {216, 512, 1000}) {
    ALeadUniProtocol alead;
    const int kc = Coalition::cubic_min_k(n);
    std::printf("%-28s %5d  %4s   %8llu   %5s  %4s\n", "A-LEADuni honest", n, "-",
                static_cast<unsigned long long>(run_gap(alead, nullptr, n, 1)), "-", "-");

    CubicDeviation cubic(Coalition::cubic_staircase(n, kc), 0);
    std::printf("%-28s %5d  %4d   %8llu   %5d  %4d\n", "A-LEADuni + cubic attack", n, kc,
                static_cast<unsigned long long>(run_gap(alead, &cubic, n, 2)), kc * kc,
                2 * kc);

    PhaseAsyncLeadProtocol phase(n, 0x6a6aull + n);
    std::printf("%-28s %5d  %4s   %8llu   %5s  %4s\n", "PhaseAsyncLead honest", n, "-",
                static_cast<unsigned long long>(run_gap(phase, nullptr, n, 3)), "-", "-");

    PhaseRushingDeviation rush(Coalition::equally_spaced(n, kc), 0, phase);
    std::printf("%-28s %5d  %4d   %8llu   %5d  %4d\n", "PhaseAsyncLead + rushing", n, kc,
                static_cast<unsigned long long>(run_gap(phase, &rush, n, 4)), kc * kc,
                2 * kc);

    PhaseSumLeadProtocol psum(n);
    PhaseSumDeviation e4(PhaseSumDeviation::placement(n), 0, psum);
    std::printf("%-28s %5d  %4d   %8llu   %5d  %4d\n", "PhaseSumLead + E.4 attack", n, 4,
                static_cast<unsigned long long>(run_gap(psum, &e4, n, 5)), 16, 8);
  }
  bench::note("expected shape: cubic attack gap grows ~k^2 (the desync it exploits);");
  bench::note("phase-validated protocols stay at O(k) even under deviation — the");
  bench::note("k-synchronization PhaseAsyncLead's resilience proof rests on");
  return 0;
}
