// X2 (Lemmas D.3/D.5, Section 6): synchronization gaps.  Honest A-LEADuni
// runs in lock-step (gap 1); the cubic attack desynchronizes by Theta(k^2)
// — exactly the slack Theorem 5.1's proof bounds; PhaseAsyncLead's phase
// validation pins everyone to O(k) even under attack.

#include <cstdio>

#include "attacks/coalition.h"
#include "harness.h"

int main() {
  using namespace fle;
  bench::Harness h("x2", "X2 / synchronization gaps",
                   "max_t (max_i Sent_i - min_i Sent_i): who stays synchronized?");
  h.row_header("      scenario                  n     k    max gap    k^2    2k");

  const auto print_gap = [](const char* label, int n, int k, std::uint64_t gap) {
    if (k > 0) {
      std::printf("%-28s %5d  %4d   %8llu   %5d  %4d\n", label, n, k,
                  static_cast<unsigned long long>(gap), k * k, 2 * k);
    } else {
      std::printf("%-28s %5d  %4s   %8llu   %5s  %4s\n", label, n, "-",
                  static_cast<unsigned long long>(gap), "-", "-");
    }
  };

  for (const int n : {216, 512, 1000}) {
    const int kc = Coalition::cubic_min_k(n);
    const auto base = [n](const char* protocol, std::uint64_t seed) {
      ScenarioSpec spec;
      spec.protocol = protocol;
      spec.n = n;
      spec.trials = 5;
      spec.seed = seed;
      return spec;
    };

    print_gap("A-LEADuni honest", n, 0, h.run(base("alead-uni", 1)).max_sync_gap);

    ScenarioSpec cubic = base("alead-uni", 2);
    cubic.deviation = "cubic";
    cubic.coalition = CoalitionSpec::cubic_staircase(kc);
    print_gap("A-LEADuni + cubic attack", n, kc, h.run(cubic).max_sync_gap);

    ScenarioSpec phase_honest = base("phase-async-lead", 3);
    phase_honest.protocol_key = 0x6a6aull + n;
    print_gap("PhaseAsyncLead honest", n, 0, h.run(phase_honest).max_sync_gap);

    ScenarioSpec rushing = base("phase-async-lead", 4);
    rushing.protocol_key = 0x6a6aull + n;
    rushing.deviation = "phase-rushing";
    rushing.coalition = CoalitionSpec::equally_spaced(kc);
    print_gap("PhaseAsyncLead + rushing", n, kc, h.run(rushing).max_sync_gap);

    ScenarioSpec sum = base("phase-sum-lead", 5);
    sum.deviation = "phase-sum";  // canonical k = 4 placement
    print_gap("PhaseSumLead + E.4 attack", n, 4, h.run(sum).max_sync_gap);
  }
  h.note("expected shape: cubic attack gap grows ~k^2 (the desync it exploits);");
  h.note("phase-validated protocols stay at O(k) even under deviation — the");
  h.note("k-synchronization PhaseAsyncLead's resilience proof rests on");
  return 0;
}
