// X2 (Lemmas D.3/D.5, Section 6): synchronization gaps.  Honest A-LEADuni
// runs in lock-step (gap 1); the cubic attack desynchronizes by Theta(k^2)
// — exactly the slack Theorem 5.1's proof bounds; PhaseAsyncLead's phase
// validation pins everyone to O(k) even under attack.
//
// All 15 scenarios (3 ring sizes x 5 profiles) run as one sweep.

#include <cstdio>
#include <string>
#include <vector>

#include "attacks/coalition.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("x2", "X2 / synchronization gaps",
                   "max_t (max_i Sent_i - min_i Sent_i): who stays synchronized?",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header("      scenario                  n     k    max gap    k^2    2k");

  struct RowInfo {
    const char* label;
    int n;
    int k;  ///< 0 = honest
  };
  const std::vector<int> sizes = {216, 512, 1000};
  SweepSpec sweep;
  std::vector<std::string> labels;
  std::vector<RowInfo> rows;
  for (const int n : sizes) {
    const int kc = Coalition::cubic_min_k(n);
    const auto base = [n](const char* protocol, std::uint64_t seed) {
      ScenarioSpec spec;
      spec.protocol = protocol;
      spec.n = n;
      spec.trials = 5;
      spec.seed = seed;
      return spec;
    };

    sweep.add(base("alead-uni", 1));
    rows.push_back({"A-LEADuni honest", n, 0});

    ScenarioSpec cubic = base("alead-uni", 2);
    cubic.deviation = "cubic";
    cubic.coalition = CoalitionSpec::cubic_staircase(kc);
    sweep.add(cubic);
    rows.push_back({"A-LEADuni + cubic attack", n, kc});

    ScenarioSpec phase_honest = base("phase-async-lead", 3);
    phase_honest.protocol_key = 0x6a6aull + n;
    sweep.add(phase_honest);
    rows.push_back({"PhaseAsyncLead honest", n, 0});

    ScenarioSpec rushing = base("phase-async-lead", 4);
    rushing.protocol_key = 0x6a6aull + n;
    rushing.deviation = "phase-rushing";
    rushing.coalition = CoalitionSpec::equally_spaced(kc);
    sweep.add(rushing);
    rows.push_back({"PhaseAsyncLead + rushing", n, kc});

    ScenarioSpec sum = base("phase-sum-lead", 5);
    sum.deviation = "phase-sum";  // canonical k = 4 placement
    sweep.add(sum);
    rows.push_back({"PhaseSumLead + E.4 attack", n, 4});
  }
  for (const RowInfo& row : rows) labels.emplace_back(row.label);
  const auto results = h.run_sweep(sweep, labels);

  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowInfo& row = rows[i];
    const std::uint64_t gap = results[i].max_sync_gap;
    if (row.k > 0) {
      std::printf("%-28s %5d  %4d   %8llu   %5d  %4d\n", row.label, row.n, row.k,
                  static_cast<unsigned long long>(gap), row.k * row.k, 2 * row.k);
    } else {
      std::printf("%-28s %5d  %4s   %8llu   %5s  %4s\n", row.label, row.n, "-",
                  static_cast<unsigned long long>(gap), "-", "-");
    }
  }
  h.note("expected shape: cubic attack gap grows ~k^2 (the desync it exploits);");
  h.note("phase-validated protocols stay at O(k) even under deviation — the");
  h.note("k-synchronization PhaseAsyncLead's resilience proof rests on");
  return 0;
}
