// E5 (Theorem 5.1): A-LEADuni is resilient for k <= n^(1/4)/4.  Below every
// attack's requirement the coalition gains nothing: attack preconditions
// fail outright, and honest executions stay unbiased.
//
// The three big honest baselines run as ONE sweep (Harness::run_sweep).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "attacks/coalition.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e05", "E5 / Theorem 5.1",
                   "A-LEADuni resilience regime: k <= n^(1/4)/4 cannot be attacked",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header(
      "      n    k0=n^(1/4)/4   rushing-k-needed   cubic-k-needed   honest Pr[w]-1/n");

  const std::vector<int> sizes = {256, 1024, 4096};
  SweepSpec sweep;
  sweep.threads = 0;  // hardware concurrency for the whole batch
  for (const int n : sizes) {
    ScenarioSpec spec;
    spec.protocol = "alead-uni";
    spec.n = n;
    // Keep total delivered messages ~ 10^8: enough trials to bound the
    // fixed-target deviation well below any exploitable bias.
    spec.trials = std::max<std::size_t>(60, 100'000'000ull /
                                                (static_cast<std::size_t>(n) * n));
    spec.seed = n;
    sweep.add(spec);
  }
  const auto results = h.run_sweep(sweep);

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const int n = sizes[i];
    const double k0 = std::pow(static_cast<double>(n), 0.25) / 4.0;
    int rushing_k = 1;
    while (!Coalition::equally_spaced(n, rushing_k + 1).rushing_precondition_holds() &&
           rushing_k + 1 < n - 1) {
      ++rushing_k;
    }
    const int cubic_k = Coalition::cubic_min_k(n);
    // Fixed-target deviation from 1/n: the eps of eps-k-unbiasedness for a
    // specific w (max-over-j needs >> n trials to separate from noise).
    const Value w = static_cast<Value>(n / 2);
    std::printf("%7d   %12.2f   %16d   %14d   %16.5f\n", n, k0, rushing_k + 1, cubic_k,
                results[i].outcomes.leader_rate(w) - 1.0 / n);
  }
  h.note("expected shape: both attack thresholds sit far above k0 = n^(1/4)/4;");
  h.note("the gap between k0 and cubic-k-needed is the open band of Conjecture 4.7");
  return 0;
}
