// E5 (Theorem 5.1): A-LEADuni is resilient for k <= n^(1/4)/4.  Below every
// attack's requirement the coalition gains nothing: attack preconditions
// fail outright, and honest executions stay unbiased.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "attacks/coalition.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e05", "E5 / Theorem 5.1",
                   "A-LEADuni resilience regime: k <= n^(1/4)/4 cannot be attacked",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header(
      "      n    k0=n^(1/4)/4   rushing-k-needed   cubic-k-needed   honest Pr[w]-1/n");

  for (const int n : {256, 1024, 4096}) {
    const double k0 = std::pow(static_cast<double>(n), 0.25) / 4.0;
    int rushing_k = 1;
    while (!Coalition::equally_spaced(n, rushing_k + 1).rushing_precondition_holds() &&
           rushing_k + 1 < n - 1) {
      ++rushing_k;
    }
    const int cubic_k = Coalition::cubic_min_k(n);
    ScenarioSpec spec;
    spec.protocol = "alead-uni";
    spec.n = n;
    // Keep total delivered messages ~ 10^8: enough trials to bound the
    // fixed-target deviation well below any exploitable bias.  The parallel
    // trial batcher spreads the sweep over all cores.
    spec.trials = std::max<std::size_t>(60, 100'000'000ull /
                                                (static_cast<std::size_t>(n) * n));
    spec.seed = n;
    spec.threads = 0;  // hardware concurrency
    const auto honest = h.run(spec);
    // Fixed-target deviation from 1/n: the eps of eps-k-unbiasedness for a
    // specific w (max-over-j needs >> n trials to separate from noise).
    const Value w = static_cast<Value>(n / 2);
    std::printf("%7d   %12.2f   %16d   %14d   %16.5f\n", n, k0, rushing_k + 1, cubic_k,
                honest.outcomes.leader_rate(w) - 1.0 / n);
  }
  h.note("expected shape: both attack thresholds sit far above k0 = n^(1/4)/4;");
  h.note("the gap between k0 and cubic-k-needed is the open band of Conjecture 4.7");
  return 0;
}
