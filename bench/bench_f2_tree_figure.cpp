// F2 (Figure 2): the k-simulated tree example (k = 4) with the Definition
// 7.1 checker run on it, plus the ring-as-two-arcs simulation.

#include <cstdio>

#include "harness.h"
#include "trees/partition.h"
#include "trees/simulated_tree.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("f2", "F2 / Figure 2",
                   "A k-simulated tree with k = 4 (Definition 7.1)",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();

  const auto ex = figure2_example();
  std::printf("graph: %d vertices, %zu edges, connected=%s\n", ex.graph.n(),
              ex.graph.edge_count(), ex.graph.connected() ? "yes" : "no");
  std::printf("tree:  %d vertices, is_tree=%s\n", ex.simulation.tree.n(),
              ex.simulation.tree.is_tree() ? "yes" : "no");
  const auto parts = ex.simulation.parts();
  for (std::size_t t = 0; t < parts.size(); ++t) {
    std::printf("  part %zu (tree vertex %zu): {", t, t);
    for (std::size_t i = 0; i < parts[t].size(); ++i) {
      std::printf("%s%d", i ? "," : "", parts[t][i]);
    }
    std::printf("}\n");
  }
  std::printf("width (k witnessed): %d\n", ex.simulation.width());
  std::printf("valid 4-simulation:  %s\n",
              is_valid_simulation(ex.graph, ex.simulation, 4) ? "yes" : "NO");
  std::printf("valid 3-simulation:  %s (should be NO: width is 4)\n",
              is_valid_simulation(ex.graph, ex.simulation, 3) ? "yes" : "NO");
  {
    bench::JsonObject row;
    row.set("label", "figure2")
        .set("n", ex.graph.n())
        .set("width", ex.simulation.width())
        .set("valid_4", is_valid_simulation(ex.graph, ex.simulation, 4))
        .set("valid_3", is_valid_simulation(ex.graph, ex.simulation, 3));
    h.add_row(row);
  }

  h.note("ring as a ceil(n/2)-simulated tree (the Abraham et al. special case):");
  h.row_header("  ring n   arcs   width   valid");
  for (const int n : {4, 9, 16, 101}) {
    const auto sim = ring_as_two_arc_simulation(n);
    const bool valid = is_valid_simulation(Graph::ring(n), sim, (n + 1) / 2);
    std::printf("%8d   %4d   %5d   %5s\n", n, sim.tree.n(), sim.width(),
                valid ? "yes" : "NO");
    bench::JsonObject row;
    row.set("label", "ring-two-arcs").set("n", n).set("width", sim.width()).set("valid",
                                                                                valid);
    h.add_row(row);
  }
  return 0;
}
