// E4 (Theorem 4.3): the Cubic Attack controls A-LEADuni with
// k = Theta(n^(1/3)) adversarially placed adversaries, and terminates for
// every staircase size (Lemma 4.4).

#include <cmath>
#include <cstdio>

#include "analysis/experiment.h"
#include "attacks/coalition.h"
#include "attacks/cubic.h"
#include "bench_util.h"
#include "protocols/alead_uni.h"

int main() {
  using namespace fle;
  bench::title("E4 / Theorem 4.3 (Cubic Attack)",
               "A-LEADuni: k = Theta(n^(1/3)) staircase adversaries control the outcome");
  bench::row_header("      n     k   2*n^(1/3)   attacked Pr[w]   FAIL   sync gap");

  ALeadUniProtocol protocol;
  for (const int n : {64, 128, 256, 512, 1024, 2048, 4096}) {
    const int k = Coalition::cubic_min_k(n);
    const Value w = static_cast<Value>(n / 2);
    CubicDeviation deviation(Coalition::cubic_staircase(n, k), w);
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.trials = 25;
    cfg.seed = n;
    const auto r = run_trials(protocol, &deviation, cfg);
    std::printf("%7d  %4d   %9.1f   %14.4f   %4.2f   %8llu\n", n, k,
                2.0 * std::cbrt(static_cast<double>(n)), r.outcomes.leader_rate(w),
                r.outcomes.fail_rate(),
                static_cast<unsigned long long>(r.max_sync_gap));
  }
  bench::note("expected shape: Pr[w] = 1 with k tracking ~2 n^(1/3); gap = Theta(k^2),");
  bench::note("the k^2-desynchronization the attack needs (paper Section 6 discussion)");
  return 0;
}
