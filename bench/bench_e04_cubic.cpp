// E4 (Theorem 4.3): the Cubic Attack controls A-LEADuni with
// k = Theta(n^(1/3)) adversarially placed adversaries, and terminates for
// every staircase size (Lemma 4.4).
//
// The n-sweep runs as one executor submission (api/sweep.h): small rings
// finish early and their workers steal chunks from the n=4096 scenario.

#include <cmath>
#include <cstdio>
#include <vector>

#include "attacks/coalition.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h(
      "e04", "E4 / Theorem 4.3 (Cubic Attack)",
      "A-LEADuni: k = Theta(n^(1/3)) staircase adversaries control the outcome",
      bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header("      n     k   2*n^(1/3)   attacked Pr[w]   FAIL   sync gap");

  const std::vector<int> sizes = {64, 128, 256, 512, 1024, 2048, 4096};
  SweepSpec sweep;
  for (const int n : sizes) {
    const int k = Coalition::cubic_min_k(n);
    ScenarioSpec spec;
    spec.protocol = "alead-uni";
    spec.deviation = "cubic";
    spec.coalition = CoalitionSpec::cubic_staircase(k);
    spec.target = static_cast<Value>(n / 2);
    spec.n = n;
    spec.trials = 25;
    spec.seed = n;
    sweep.add(spec);
  }
  const auto results = h.run_sweep(sweep);

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const int n = sizes[i];
    const ScenarioResult& r = results[i];
    std::printf("%7d  %4d   %9.1f   %14.4f   %4.2f   %8llu\n", n,
                Coalition::cubic_min_k(n), 2.0 * std::cbrt(static_cast<double>(n)),
                r.outcomes.leader_rate(sweep.scenarios[i].target), r.outcomes.fail_rate(),
                static_cast<unsigned long long>(r.max_sync_gap));
  }
  h.note("expected shape: Pr[w] = 1 with k tracking ~2 n^(1/3); gap = Theta(k^2),");
  h.note("the k^2-desynchronization the attack needs (paper Section 6 discussion)");
  return 0;
}
