// E13 (Section 1.1 related work, reproduced): resilience thresholds across
// network topologies.  The asynchronous fully-connected network supports
// k = n/2 - 1 via Shamir sharing; the ring only Theta(sqrt(n)).  Both
// boundaries are exhibited by live attacks.
//
// All 12 attacked cells run as ONE sweep (Harness::run_sweep).

#include <cstdio>
#include <string>
#include <vector>

#include "attacks/shamir_attacks.h"
#include "harness.h"
#include "protocols/shamir_lead.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e13", "E13 / related-work baseline (Abraham et al. via Shamir)",
                   "Fully-connected async FLE: resilient to n/2-1, broken at n/2",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header(
      "     n    k         attack        possible   Pr[w]   FAIL   (w = n-1)");

  struct Cell {
    int n;
    int k;
    const char* name;
    bool forge;
  };
  std::vector<Cell> cells;
  SweepSpec sweep;
  std::vector<std::string> labels;
  for (const int n : {8, 12, 16, 24}) {
    ShamirLeadProtocol protocol(n);
    const Value w = static_cast<Value>(n - 1);
    const int t = protocol.params().t;
    const Cell rows[] = {
        {n, (n + 1) / 2 - 1, "forge (k=n/2-1)", true},   // resilient regime
        {n, (n + 1) / 2, "forge (k=n/2)", true},          // impossibility boundary
        {n, t, "rushing (k=t)", false},                   // reconstruction regime
    };
    for (const Cell& row : rows) {
      ScenarioSpec spec;
      spec.topology = TopologyKind::kGraph;
      spec.protocol = "shamir-lead";
      spec.deviation = row.forge ? "shamir-forge" : "shamir-rushing";
      spec.coalition = CoalitionSpec::consecutive(row.k, row.forge ? 0 : 1);
      spec.target = w;
      spec.n = n;
      spec.trials = 20;
      spec.seed = 17 * n + row.k;
      cells.push_back(row);
      sweep.add(spec);
      labels.emplace_back(row.name);
    }
  }
  const auto results = h.run_sweep(sweep, labels);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    ShamirLeadProtocol protocol(cell.n);
    const Value w = static_cast<Value>(cell.n - 1);
    bool possible;
    if (cell.forge) {
      ShamirForgeDeviation probe(Coalition::consecutive(cell.n, cell.k, 0), w, protocol);
      possible = probe.forging_possible();
    } else {
      ShamirRushingDeviation probe(Coalition::consecutive(cell.n, cell.k, 1), w, protocol);
      possible = probe.reconstruction_possible();
    }
    const ScenarioResult& r = results[i];
    std::printf("%6d  %3d   %18s   %8s   %5.2f   %4.2f\n", cell.n, cell.k, cell.name,
                possible ? "yes" : "no", r.outcomes.leader_rate(w),
                r.outcomes.fail_rate());
  }
  h.note("expected shape: Pr[w] jumps 0 -> 1 exactly at k = ceil(n/2) (forge)");
  h.note("and k = floor(n/2)+1 (rushing); below, attacks fail or give no gain.");
  h.note("Contrast: the ring tops out at Theta(sqrt(n)) (E7) — topology buys");
  h.note("resilience: fully-connected n/2 >> ring sqrt(n) >> tree k (Thm 7.2)");
  return 0;
}
