// E13 (Section 1.1 related work, reproduced): resilience thresholds across
// network topologies.  The asynchronous fully-connected network supports
// k = n/2 - 1 via Shamir sharing; the ring only Theta(sqrt(n)).  Both
// boundaries are exhibited by live attacks.

#include <cstdio>

#include "attacks/shamir_attacks.h"
#include "bench_util.h"
#include "protocols/shamir_lead.h"

int main() {
  using namespace fle;
  bench::title("E13 / related-work baseline (Abraham et al. via Shamir)",
               "Fully-connected async FLE: resilient to n/2-1, broken at n/2");
  bench::row_header(
      "     n    k         attack        possible   Pr[w]   FAIL   (w = n-1)");

  const auto run_attack = [](const ShamirLeadProtocol& protocol, const GraphDeviation& dev,
                             int n, Value w, double* rate, double* fail) {
    int hits = 0, fails = 0;
    const int trials = 20;
    for (std::uint64_t seed = 0; seed < trials; ++seed) {
      GraphEngine engine(n, seed * 11 + 1);
      const Outcome o = engine.run(compose_graph_strategies(protocol, &dev, n));
      if (o.failed()) {
        ++fails;
      } else if (o.leader() == w) {
        ++hits;
      }
    }
    *rate = static_cast<double>(hits) / trials;
    *fail = static_cast<double>(fails) / trials;
  };

  for (const int n : {8, 12, 16, 24}) {
    ShamirLeadProtocol protocol(n);
    const Value w = static_cast<Value>(n - 1);
    const int t = protocol.params().t;
    struct Row {
      int k;
      const char* name;
      bool forge;
    };
    const Row rows[] = {
        {(n + 1) / 2 - 1, "forge (k=n/2-1)", true},   // resilient regime
        {(n + 1) / 2, "forge (k=n/2)", true},          // impossibility boundary
        {t, "rushing (k=t)", false},                   // reconstruction regime
    };
    for (const auto& row : rows) {
      double rate = 0, fail = 0;
      bool possible;
      if (row.forge) {
        ShamirForgeDeviation dev(Coalition::consecutive(n, row.k, 0), w, protocol);
        possible = dev.forging_possible();
        run_attack(protocol, dev, n, w, &rate, &fail);
      } else {
        ShamirRushingDeviation dev(Coalition::consecutive(n, row.k, 1), w, protocol);
        possible = dev.reconstruction_possible();
        run_attack(protocol, dev, n, w, &rate, &fail);
      }
      std::printf("%6d  %3d   %18s   %8s   %5.2f   %4.2f\n", n, row.k, row.name,
                  possible ? "yes" : "no", rate, fail);
    }
  }
  bench::note("expected shape: Pr[w] jumps 0 -> 1 exactly at k = ceil(n/2) (forge)");
  bench::note("and k = floor(n/2)+1 (rushing); below, attacks fail or give no gain.");
  bench::note("Contrast: the ring tops out at Theta(sqrt(n)) (E7) — topology buys");
  bench::note("resilience: fully-connected n/2 >> ring sqrt(n) >> tree k (Thm 7.2)");
  return 0;
}
