// E3 (Theorem C.1): randomly located adversaries (unknown k, unknown
// distances) control A-LEADuni with high probability at density
// p = sqrt(8 ln n / n).  Rows sweep n and the detection constant C.

#include <cmath>
#include <cstdio>

#include "analysis/experiment.h"
#include "attacks/coalition.h"
#include "attacks/random_location.h"
#include "bench_util.h"
#include "protocols/alead_uni.h"

int main() {
  using namespace fle;
  bench::title("E3 / Theorem C.1",
               "A-LEADuni vs ~sqrt(8 n ln n) randomly located adversaries");
  bench::note("success bound: 1 - n^(2-C) - delta (delta covers bad placements)");
  bench::row_header("     n    C      p     E[k]   success    bound(1-n^(2-C))");

  ALeadUniProtocol protocol;
  for (const int n : {100, 200, 400, 800}) {
    const double p = RandomLocationDeviation::recommended_density(n);
    for (const int c_prefix : {3, 4, 5}) {
      int successes = 0;
      int attempts = 0;
      double k_total = 0.0;
      for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const auto coalition = Coalition::bernoulli(n, p, seed * 31 + c_prefix);
        if (coalition.k() < c_prefix + 2) continue;
        k_total += coalition.k();
        RandomLocationDeviation deviation(coalition, 3, c_prefix, protocol);
        ExperimentConfig cfg;
        cfg.n = n;
        cfg.trials = 1;
        cfg.seed = seed * 7919 + n;
        const auto r = run_trials(protocol, &deviation, cfg);
        ++attempts;
        successes += (r.outcomes.count(3) == 1) ? 1 : 0;
      }
      const double bound = 1.0 - std::pow(static_cast<double>(n), 2.0 - c_prefix);
      std::printf("%6d  %3d  %5.3f   %5.1f   %7.3f    %7.3f\n", n, c_prefix, p,
                  attempts > 0 ? k_total / attempts : 0.0,
                  attempts > 0 ? static_cast<double>(successes) / attempts : 0.0, bound);
    }
  }
  bench::note("expected shape: success ~ 1 for C >= 4 and large n; degradation only via delta");
  return 0;
}
