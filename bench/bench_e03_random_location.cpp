// E3 (Theorem C.1): randomly located adversaries (unknown k, unknown
// distances) control A-LEADuni with high probability at density
// p = sqrt(8 ln n / n).  Rows sweep n and the detection constant C.
//
// Every sampled placement's single-trial scenario goes into ONE sweep
// (Harness::run_sweep): up to ~500 tiny scenarios share the executor's
// work queue instead of running one at a time.

#include <cmath>
#include <cstdio>
#include <vector>

#include "attacks/random_location.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e03", "E3 / Theorem C.1",
                   "A-LEADuni vs ~sqrt(8 n ln n) randomly located adversaries",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.note("success bound: 1 - n^(2-C) - delta (delta covers bad placements)");
  h.row_header("     n    C      p     E[k]   success    bound(1-n^(2-C))");

  struct Row {
    int n;
    int c_prefix;
    double p;
    double k_total = 0.0;
    std::size_t first_index = 0;  ///< window into the sweep's scenarios
    std::size_t attempts = 0;
  };
  std::vector<Row> rows;
  SweepSpec sweep;
  for (const int n : {100, 200, 400, 800}) {
    const double p = RandomLocationDeviation::recommended_density(n);
    for (const int c_prefix : {3, 4, 5}) {
      Row row{n, c_prefix, p};
      row.first_index = sweep.scenarios.size();
      for (std::uint64_t seed = 0; seed < 60; ++seed) {
        const auto placement = CoalitionSpec::bernoulli(p, seed * 31 + c_prefix);
        const auto coalition = build_coalition(placement, n);
        if (coalition->k() < c_prefix + 2) continue;
        row.k_total += coalition->k();
        ScenarioSpec spec;
        spec.protocol = "alead-uni";
        spec.deviation = "random-location";
        spec.coalition = placement;
        spec.target = 3;
        spec.prefix = c_prefix;
        spec.n = n;
        spec.trials = 1;
        spec.seed = seed * 7919 + n;
        sweep.add(spec);
        ++row.attempts;
      }
      rows.push_back(row);
    }
  }
  const auto results = h.run_sweep(sweep);

  for (const Row& row : rows) {
    int successes = 0;
    for (std::size_t i = 0; i < row.attempts; ++i) {
      successes += results[row.first_index + i].outcomes.count(3) == 1 ? 1 : 0;
    }
    const double bound = 1.0 - std::pow(static_cast<double>(row.n), 2.0 - row.c_prefix);
    std::printf("%6d  %3d  %5.3f   %5.1f   %7.3f    %7.3f\n", row.n, row.c_prefix, row.p,
                row.attempts > 0 ? row.k_total / static_cast<double>(row.attempts) : 0.0,
                row.attempts > 0 ? static_cast<double>(successes) /
                                       static_cast<double>(row.attempts)
                                 : 0.0,
                bound);
  }
  h.note("expected shape: success ~ 1 for C >= 4 and large n; degradation only via delta");
  return 0;
}
