#pragma once
// Shared bench harness: the pretty-table helpers every bench prints with,
// plus machine-readable output — each bench writes BENCH_<id>.json with one
// JSON row per recorded scenario run (spec fields + ScenarioResult
// aggregates), so sweeps can be consumed by tooling without scraping
// tables.
//
// Sweeps: run_sweep() drives a whole table as ONE SweepSpec — every
// scenario's trial chunks share the executor's work queue (api/sweep.h), so
// a table of many small and few large scenarios no longer strands cores.
//
// Sharding: pass BenchArgs(argc, argv) to split the bench across
// processes.  `bench --shard i/m` runs only trials [i*T/m, (i+1)*T/m) of
// every scenario and writes BENCH_<id>.shard_<i>_of_<m>.jsonl — mergeable
// rows (verify/shard.h) instead of the display JSON.  `bench --merge`
// reads every BENCH_<id>.shard_*.jsonl in the working directory, folds the
// rows with ScenarioResult::merge (bit-identical to the unsharded run) and
// writes the usual BENCH_<id>.json:
//
//   int main(int argc, char** argv) {
//     bench::Harness h("e01", "...", "...", bench::BenchArgs(argc, argv));
//     if (h.merge_mode()) return h.merge_shards();
//     ...rows...
//   }

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/scenario.h"
#include "api/sweep.h"

namespace fle::bench {

/// Process-wide heap-allocation count (every operator new since start).
/// The harness library overrides the global allocator with a counting
/// malloc shim, so benches can report allocations-per-trial and the perf
/// trajectory in BENCH_*.json can track allocation churn across PRs.
std::uint64_t allocation_count();

/// Peak resident set size in KiB (0 where the platform has no getrusage).
std::uint64_t peak_rss_kib();

/// Bench CLI arguments: `--shard i/m` selects a trial-window shard,
/// `--merge` switches the binary into shard-file merge mode.  Malformed
/// arguments print usage and exit(2).
struct BenchArgs {
  BenchArgs() = default;
  BenchArgs(int argc, char** argv);

  int shard_index = 0;
  int shard_count = 1;
  bool merge = false;

  [[nodiscard]] bool sharded() const { return shard_count > 1; }
};

/// Minimal JSON object builder (keys ordered as set; strings escaped).
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::uint64_t value);
  JsonObject& set(const std::string& key, int value);
  JsonObject& set(const std::string& key, bool value);

  [[nodiscard]] std::string str() const;

 private:
  JsonObject& raw(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// One bench run: banner + table helpers + the JSON sink.
///
///   Harness h("e01", "E1 / Claim B.1", "Basic-LEAD falls to one adversary");
///   ...
///   const auto r = h.run(spec, "n=8 attacked");   // runs run_scenario(spec)
///   ...                                            // printf the table row
/// The destructor writes BENCH_<id>.json (or the shard JSONL) next to the
/// binary's cwd.
class Harness {
 public:
  Harness(std::string file_id, std::string title, std::string claim, BenchArgs args = {});
  ~Harness();

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  [[nodiscard]] bool merge_mode() const { return args_.merge; }

  /// Merge mode: reads every BENCH_<id>.shard_*.jsonl in the working
  /// directory, merges the rows and queues the display JSON.  Returns the
  /// process exit code (0 on success); the destructor writes the file.
  int merge_shards();

  void note(const std::string& text);
  void row_header(const std::string& cols);

  /// Runs the scenario through run_scenario() and records a JSON row with
  /// the spec and the aggregate results.  Returns the result for printing.
  /// Under --shard i/m only the shard's trial window executes and the row
  /// goes to the shard JSONL instead.
  ScenarioResult run(const ScenarioSpec& spec, const std::string& label = {});

  /// Runs a whole table as one sweep (api/sweep.h): every scenario shares
  /// the executor's work queue.  Records one row per scenario (labels[i]
  /// where provided) and returns the results in sweep order.  The
  /// allocation columns attribute the sweep's total evenly across its rows
  /// — per-scenario attribution is not meaningful under work stealing.
  std::vector<ScenarioResult> run_sweep(SweepSpec sweep,
                                        const std::vector<std::string>& labels = {});

  /// Records a hand-built row (benches whose rows are not scenario runs).
  /// Under --shard such rows are not trial-sharded: shard 0 carries them as
  /// passthrough rows and --merge re-emits them verbatim.
  void add_row(JsonObject row);

  /// Attaches an extra derived column to the most recent row.  Under
  /// --shard this works on hand-built (add_row) rows; annotations on
  /// scenario rows are dropped with a warning — they derive from the
  /// shard's partial trials and cannot merge.
  void annotate(const std::string& key, double value);

  /// Same, addressing a display row by record order (run / run_sweep /
  /// add_row calls, zero-based) — what sweep-migrated benches use to
  /// annotate individual rows of one run_sweep table.  Subject to the same
  /// --shard dropping rule as annotate().
  void annotate_row(std::size_t index, const std::string& key, double value);

 private:
  /// Applies the shard window to a spec; false when this shard's slice of
  /// the scenario is empty (fewer trials than shards).
  bool apply_shard(ScenarioSpec& spec) const;
  void record(std::size_t case_index, const ScenarioSpec& spec, const std::string& label,
              const ScenarioResult& result, std::uint64_t allocations, bool in_sweep);
  JsonObject display_row(const ScenarioSpec& spec, const std::string& label,
                         const ScenarioResult& result, std::uint64_t allocations,
                         bool in_sweep) const;

  std::string file_id_;
  std::string title_;
  std::string claim_;
  BenchArgs args_;
  std::size_t case_counter_ = 0;   ///< scenario index: aligns rows across shards
  bool write_output_ = true;       ///< cleared when a merge fails
  std::vector<JsonObject> rows_;   ///< display rows (plain mode)
  std::vector<std::string> merged_rows_;  ///< pre-rendered rows (--merge)
  std::vector<std::string> shard_rows_;   ///< mergeable JSONL rows (--shard)
  std::vector<JsonObject> shard_passthrough_;       ///< add_row rows on shard 0
  std::vector<std::size_t> shard_passthrough_cases_;
  bool last_row_was_passthrough_ = false;
  bool annotate_warned_ = false;
};

}  // namespace fle::bench
