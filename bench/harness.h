#pragma once
// Shared bench harness: the pretty-table helpers every bench prints with,
// plus machine-readable output — each bench writes BENCH_<id>.json with one
// JSON row per recorded scenario run (spec fields + ScenarioResult
// aggregates), so sweeps can be consumed by tooling without scraping
// tables.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/scenario.h"

namespace fle::bench {

/// Process-wide heap-allocation count (every operator new since start).
/// The harness library overrides the global allocator with a counting
/// malloc shim, so benches can report allocations-per-trial and the perf
/// trajectory in BENCH_*.json can track allocation churn across PRs.
std::uint64_t allocation_count();

/// Peak resident set size in KiB (0 where the platform has no getrusage).
std::uint64_t peak_rss_kib();

/// Minimal JSON object builder (keys ordered as set; strings escaped).
class JsonObject {
 public:
  JsonObject& set(const std::string& key, const std::string& value);
  JsonObject& set(const std::string& key, const char* value);
  JsonObject& set(const std::string& key, double value);
  JsonObject& set(const std::string& key, std::uint64_t value);
  JsonObject& set(const std::string& key, int value);
  JsonObject& set(const std::string& key, bool value);

  [[nodiscard]] std::string str() const;

 private:
  JsonObject& raw(const std::string& key, std::string rendered);
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// One bench run: banner + table helpers + the JSON sink.
///
///   Harness h("e01", "E1 / Claim B.1", "Basic-LEAD falls to one adversary");
///   ...
///   const auto r = h.run(spec, "n=8 attacked");   // runs run_scenario(spec)
///   ...                                            // printf the table row
/// The destructor writes BENCH_<id>.json next to the binary's cwd.
class Harness {
 public:
  Harness(std::string file_id, std::string title, std::string claim);
  ~Harness();

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  void note(const std::string& text);
  void row_header(const std::string& cols);

  /// Runs the scenario through run_scenario() and records a JSON row with
  /// the spec and the aggregate results.  Returns the result for printing.
  ScenarioResult run(const ScenarioSpec& spec, const std::string& label = {});

  /// Records a hand-built row (benches whose rows are not scenario runs).
  void add_row(JsonObject row);

  /// Attaches an extra derived column to the most recent row.
  void annotate(const std::string& key, double value);

 private:
  std::string file_id_;
  std::string title_;
  std::string claim_;
  std::vector<JsonObject> rows_;  ///< structured until the destructor renders
};

}  // namespace fle::bench
