// F1 (Figure 1): adversary locations on the ring — the placement gallery
// with honest segment profiles for every placement family used in attacks.

#include <cstdio>

#include "attacks/coalition.h"
#include "attacks/random_location.h"
#include "bench_util.h"

int main() {
  using namespace fle;
  bench::title("F1 / Figure 1", "Coalition placements and honest segments I_j");

  const int n = 60;
  bench::note("consecutive (Claim D.1 setting):");
  std::printf("  %s\n", Coalition::consecutive(n, 6, 3).render().c_str());
  bench::note("equally spaced (Lemma 4.1 / rushing):");
  std::printf("  %s\n", Coalition::equally_spaced(n, 8).render().c_str());
  bench::note("cubic staircase (Theorem 4.3):");
  std::printf("  %s\n",
              Coalition::cubic_staircase(n, Coalition::cubic_min_k(n)).render().c_str());
  bench::note("Bernoulli(p) random (Theorem C.1), p = sqrt(8 ln n / n):");
  const double p = RandomLocationDeviation::recommended_density(n);
  std::printf("  %s\n", Coalition::bernoulli(n, p, 7).render().c_str());

  bench::row_header("placement         k    l_min  l_max  rushing-precond");
  const auto report = [&](const char* name, const Coalition& c) {
    std::printf("%-16s %4d   %5d  %5d  %15s\n", name, c.k(), c.min_segment_length(),
                c.max_segment_length(), c.rushing_precondition_holds() ? "yes" : "no");
  };
  report("consecutive", Coalition::consecutive(n, 6, 3));
  report("equal k=8", Coalition::equally_spaced(n, 8));
  report("equal k=5", Coalition::equally_spaced(n, 5));
  report("cubic", Coalition::cubic_staircase(n, Coalition::cubic_min_k(n)));
  report("bernoulli", Coalition::bernoulli(n, p, 7));
  return 0;
}
