// F1 (Figure 1): adversary locations on the ring — the placement gallery
// with honest segment profiles for every placement family used in attacks.
// Placements are built through the Scenario API's CoalitionSpec.

#include <cstdio>

#include "attacks/coalition.h"
#include "attacks/random_location.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("f1", "F1 / Figure 1", "Coalition placements and honest segments I_j",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();

  const int n = 60;
  const auto show = [&](const char* label, const CoalitionSpec& spec) {
    const auto c = build_coalition(spec, n);
    std::printf("  %s\n", c->render().c_str());
    bench::JsonObject row;
    row.set("label", label)
        .set("n", n)
        .set("k", c->k())
        .set("l_min", c->min_segment_length())
        .set("l_max", c->max_segment_length())
        .set("rushing_precond", c->rushing_precondition_holds());
    h.add_row(row);
    return *c;
  };

  h.note("consecutive (Claim D.1 setting):");
  const auto consecutive = show("consecutive", CoalitionSpec::consecutive(6, 3));
  h.note("equally spaced (Lemma 4.1 / rushing):");
  const auto equal8 = show("equal k=8", CoalitionSpec::equally_spaced(8));
  h.note("cubic staircase (Theorem 4.3):");
  const auto cubic =
      show("cubic", CoalitionSpec::cubic_staircase(Coalition::cubic_min_k(n)));
  h.note("Bernoulli(p) random (Theorem C.1), p = sqrt(8 ln n / n):");
  const double p = RandomLocationDeviation::recommended_density(n);
  const auto bernoulli = show("bernoulli", CoalitionSpec::bernoulli(p, 7));

  h.row_header("placement         k    l_min  l_max  rushing-precond");
  const auto report = [&](const char* name, const Coalition& c) {
    std::printf("%-16s %4d   %5d  %5d  %15s\n", name, c.k(), c.min_segment_length(),
                c.max_segment_length(), c.rushing_precondition_holds() ? "yes" : "no");
  };
  report("consecutive", consecutive);
  report("equal k=8", equal8);
  report("equal k=5", *build_coalition(CoalitionSpec::equally_spaced(5), n));
  report("cubic", cubic);
  report("bernoulli", bernoulli);
  return 0;
}
