// X3 (design ablation, Section 6): why l = Theta(sqrt(n))?
//
// f consumes validation values v-hat[1..n-l].  Two attack channels compete:
//  * rushing/free-slot steering (E7) needs k ~ sqrt(n), independent of l,
//    but only works when the adversary knows v-hat[1..n-l] before its free
//    slots — i.e. when l is large enough (l > ~k);
//  * late-validation steering needs k = l *consecutive* members (the
//    validator of round n-l chooses an f input after everything else is
//    determined).
// The protocol is only as strong as the cheaper channel: min(sqrt(n), l).
// Small l hands the election to constant coalitions; l = Theta(sqrt(n))
// balances the two at the sqrt(n) the paper proves optimal.
//
// Both attack channels across every l run as ONE sweep (Harness::run_sweep).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/random_function.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  const int n = 196;
  const int k_rush = static_cast<int>(std::sqrt(static_cast<double>(n))) + 3;  // 17
  bench::Harness h("x3", "X3 / ablation: the l parameter of PhaseAsyncLead (n=196)",
                   "two attack channels vs l; the protocol is as weak as the cheaper one",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header(
      "     l   rushing k=17 Pr[w]   late-val k=l Pr[w]   cheapest breaking k");

  const Value w = 77;
  const int l_default = RandomFunction::default_l(n);
  const std::vector<int> ls = {4, 8, 16, 48, 96, l_default};
  SweepSpec sweep;
  std::vector<std::string> labels;
  for (const int l : ls) {
    ScenarioSpec rush;
    rush.protocol = "phase-async-lead";
    rush.protocol_key = 0xab1e + l;
    rush.param_l = l;
    rush.deviation = "phase-rushing";
    rush.coalition = CoalitionSpec::equally_spaced(k_rush);
    rush.target = w;
    rush.search_cap = 96ull * n;
    rush.n = n;
    rush.trials = 12;
    rush.seed = l;
    sweep.add(rush);
    labels.emplace_back("rushing");

    ScenarioSpec late;
    late.protocol = "phase-async-lead";
    late.protocol_key = 0xab1e + l;
    late.param_l = l;
    late.deviation = "phase-late-validation";  // canonical l-consecutive coalition
    late.target = w;
    late.n = n;
    late.trials = 12;
    late.seed = 2 * l + 1;
    sweep.add(late);
    labels.emplace_back("late-validation");
  }
  const auto results = h.run_sweep(sweep, labels);

  for (std::size_t i = 0; i < ls.size(); ++i) {
    const int l = ls[i];
    const double rush_rate = results[2 * i].outcomes.leader_rate(w);
    const double late_rate = results[2 * i + 1].outcomes.leader_rate(w);
    const int cheapest = std::min(rush_rate > 0.5 ? k_rush : n, late_rate > 0.5 ? l : n);
    std::printf("%6d   %18.3f   %18.3f   %19d\n", l, rush_rate, late_rate, cheapest);
  }
  h.note("expected shape: late-val column is 1.0 everywhere with k = l members;");
  h.note("rushing column turns on once l > ~k (the adversary must know the");
  h.note("v-hat prefix before its free slots).  The cheapest breaking coalition");
  h.note("is min(l, sqrt(n)+3): maximized by l = Theta(sqrt(n)) — the paper's");
  h.note("choice l = ceil(10 sqrt(n)) sits on the plateau.");
  return 0;
}
