// X3 (design ablation, Section 6): why l = Theta(sqrt(n))?
//
// f consumes validation values v-hat[1..n-l].  Two attack channels compete:
//  * rushing/free-slot steering (E7) needs k ~ sqrt(n), independent of l,
//    but only works when the adversary knows v-hat[1..n-l] before its free
//    slots — i.e. when l is large enough (l > ~k);
//  * late-validation steering needs k = l *consecutive* members (the
//    validator of round n-l chooses an f input after everything else is
//    determined).
// The protocol is only as strong as the cheaper channel: min(sqrt(n), l).
// Small l hands the election to constant coalitions; l = Theta(sqrt(n))
// balances the two at the sqrt(n) the paper proves optimal.

#include <cmath>
#include <cstdio>

#include "analysis/experiment.h"
#include "attacks/coalition.h"
#include "attacks/phase_late_validation.h"
#include "attacks/phase_rushing.h"
#include "bench_util.h"
#include "protocols/phase_async_lead.h"

int main() {
  using namespace fle;
  const int n = 196;
  const int k_rush = static_cast<int>(std::sqrt(static_cast<double>(n))) + 3;  // 17
  bench::title("X3 / ablation: the l parameter of PhaseAsyncLead (n=196)",
               "two attack channels vs l; the protocol is as weak as the cheaper one");
  bench::row_header(
      "     l   rushing k=17 Pr[w]   late-val k=l Pr[w]   cheapest breaking k");

  const Value w = 77;
  const int l_default = RandomFunction::default_l(n);
  for (const int l : {4, 8, 16, 48, 96, l_default}) {
    PhaseParams params = PhaseParams::defaults(n);
    params.l = l;
    PhaseAsyncLeadProtocol protocol(params, 0xab1e + l);

    double rush_rate = 0.0;
    {
      PhaseRushingDeviation dev(Coalition::equally_spaced(n, k_rush), w, protocol,
                                96ull * n);
      ExperimentConfig cfg;
      cfg.n = n;
      cfg.trials = 12;
      cfg.seed = l;
      rush_rate = run_trials(protocol, &dev, cfg).outcomes.leader_rate(w);
    }
    double late_rate = 0.0;
    {
      PhaseLateValidationDeviation dev(protocol, w);
      ExperimentConfig cfg;
      cfg.n = n;
      cfg.trials = 12;
      cfg.seed = 2 * l + 1;
      late_rate = run_trials(protocol, &dev, cfg).outcomes.leader_rate(w);
    }
    const int cheapest = std::min(rush_rate > 0.5 ? k_rush : n, late_rate > 0.5 ? l : n);
    std::printf("%6d   %18.3f   %18.3f   %19d\n", l, rush_rate, late_rate, cheapest);
  }
  bench::note("expected shape: late-val column is 1.0 everywhere with k = l members;");
  bench::note("rushing column turns on once l > ~k (the adversary must know the");
  bench::note("v-hat prefix before its free slots).  The cheapest breaking coalition");
  bench::note("is min(l, sqrt(n)+3): maximized by l = Theta(sqrt(n)) — the paper's");
  bench::note("choice l = ceil(10 sqrt(n)) sits on the plateau.");
  return 0;
}
