// E11 (Theorem 8.1): FLE <-> coin toss reductions measured over real
// PhaseAsyncLead elections, with the theorem's bias-amplification bounds.
// Per-trial outcomes come from record_outcomes scenarios — the reductions
// are outcome-level adapters over the recorded elections.
//
// All five recorded-election scenarios run as ONE sweep
// (Harness::run_sweep); per-row derived columns use annotate_row.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/reductions.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e11", "E11 / Theorem 8.1",
                   "Leader election <-> coin toss reductions",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();

  const std::vector<int> coin_sizes = {8, 16, 64};
  const std::vector<int> election_sizes = {8, 16};
  SweepSpec sweep;
  sweep.threads = 0;
  std::vector<std::string> labels;
  for (const int n : coin_sizes) {
    ScenarioSpec spec;
    spec.protocol = "phase-async-lead";
    spec.protocol_key = 0xc0141ull + n;
    spec.n = n;
    spec.trials = 3000;
    spec.seed = 37 * n + 11;
    spec.record_outcomes = true;
    sweep.add(spec);
    labels.emplace_back("coin-from-election");
  }
  for (const int n : election_sizes) {
    const int tosses = tosses_needed(n);
    ScenarioSpec spec;
    spec.protocol = "phase-async-lead";
    spec.protocol_key = 0x7055ull + n;
    spec.n = n;
    spec.trials = static_cast<std::size_t>(1500) * tosses;
    spec.seed = 101 * n + 3;
    spec.record_outcomes = true;
    sweep.add(spec);
    labels.emplace_back("election-from-coins");
  }
  const auto results = h.run_sweep(sweep, labels);

  h.row_header("     n   trials   Pr[coin=1] (from election parity)   |bias|");
  for (std::size_t i = 0; i < coin_sizes.size(); ++i) {
    const int n = coin_sizes[i];
    const ScenarioResult& r = results[i];
    int ones = 0;
    for (const Outcome& o : r.per_trial) {
      if (coin_from_leader(o) == CoinResult::kOne) ++ones;
    }
    const double rate = static_cast<double>(ones) / static_cast<double>(r.trials);
    h.annotate_row(i, "coin_one_rate", rate);
    std::printf("%6d   %6zu   %33.4f   %6.4f\n", n, r.trials, rate, std::abs(rate - 0.5));
  }
  h.note("expected shape: Pr[coin=1] ~ 1/2 (paper bound: 1/2 + n*eps/2, eps ~ 0)");

  h.row_header("     n   tosses   election max bias (from coins)   bound (1/2+eps)^log2(n)");
  for (std::size_t i = 0; i < election_sizes.size(); ++i) {
    const int n = election_sizes[i];
    const int tosses = tosses_needed(n);
    const int elections = 1500;
    const ScenarioResult& r = results[coin_sizes.size() + i];
    std::vector<int> counts(static_cast<std::size_t>(n), 0);
    for (int t = 0; t < elections; ++t) {
      std::vector<CoinResult> coins;
      for (int b = 0; b < tosses; ++b) {
        coins.push_back(coin_from_leader(r.per_trial[static_cast<std::size_t>(t) * tosses + b]));
      }
      const Outcome leader = leader_from_coins(coins, n);
      if (leader.valid()) ++counts[static_cast<std::size_t>(leader.leader())];
    }
    double max_rate = 0.0;
    for (const int c : counts) {
      max_rate = std::max(max_rate, static_cast<double>(c) / elections);
    }
    h.annotate_row(coin_sizes.size() + i, "election_max_bias", max_rate - 1.0 / n);
    std::printf("%6d   %6d   %30.4f   %23.4f\n", n, tosses, max_rate - 1.0 / n,
                election_probability_bound_from_coins(0.02, n) - 1.0 / n);
  }
  h.note("expected shape: measured bias within the theorem's amplification bound");
  return 0;
}
