// E11 (Theorem 8.1): FLE <-> coin toss reductions measured over real
// PhaseAsyncLead elections, with the theorem's bias-amplification bounds.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/reductions.h"
#include "protocols/phase_async_lead.h"
#include "sim/engine.h"

int main() {
  using namespace fle;
  bench::title("E11 / Theorem 8.1", "Leader election <-> coin toss reductions");

  bench::row_header("     n   trials   Pr[coin=1] (from election parity)   |bias|");
  for (const int n : {8, 16, 64}) {
    PhaseAsyncLeadProtocol protocol(n, 0xc0141ull + n);
    const int trials = 3000;
    int ones = 0;
    for (int t = 0; t < trials; ++t) {
      const Outcome o = run_honest(protocol, n, static_cast<std::uint64_t>(t) * 37 + 11);
      if (coin_from_leader(o) == CoinResult::kOne) ++ones;
    }
    const double rate = static_cast<double>(ones) / trials;
    std::printf("%6d   %6d   %33.4f   %6.4f\n", n, trials, rate, std::abs(rate - 0.5));
  }
  bench::note("expected shape: Pr[coin=1] ~ 1/2 (paper bound: 1/2 + n*eps/2, eps ~ 0)");

  bench::row_header("     n   tosses   election max bias (from coins)   bound (1/2+eps)^log2(n)");
  for (const int n : {8, 16}) {
    PhaseAsyncLeadProtocol protocol(n, 0x7055ull + n);
    const int trials = 1500;
    std::vector<int> counts(static_cast<std::size_t>(n), 0);
    for (int t = 0; t < trials; ++t) {
      std::vector<CoinResult> coins;
      for (int b = 0; b < tosses_needed(n); ++b) {
        const Outcome o =
            run_honest(protocol, n, static_cast<std::uint64_t>(t) * 101 + b * 17 + 3);
        coins.push_back(coin_from_leader(o));
      }
      const Outcome leader = leader_from_coins(coins, n);
      if (leader.valid()) ++counts[static_cast<std::size_t>(leader.leader())];
    }
    double max_rate = 0.0;
    for (const int c : counts) max_rate = std::max(max_rate, static_cast<double>(c) / trials);
    std::printf("%6d   %6d   %30.4f   %23.4f\n", n, tosses_needed(n),
                max_rate - 1.0 / n, election_probability_bound_from_coins(0.02, n) - 1.0 / n);
  }
  bench::note("expected shape: measured bias within the theorem's amplification bound");
  return 0;
}
