// E6 (Theorem 6.1): PhaseAsyncLead is resilient for k = O(sqrt(n)).  The
// strongest known deviation (rushing + free-slot steering) gains nothing
// below the threshold: no free slots exist, segments decohere, executions
// FAIL — which solution preference makes worthless to rational coalitions.
//
// Honest baselines and sub-threshold attacked runs all share ONE sweep
// (Harness::run_sweep): the big honest histograms no longer strand workers
// while the 30-trial attacked cells run.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "attacks/coalition.h"
#include "attacks/phase_rushing.h"
#include "harness.h"
#include "protocols/phase_async_lead.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e06", "E6 / Theorem 6.1",
                   "PhaseAsyncLead resilience: sub-sqrt(n) coalitions gain nothing",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header("     n    k   free slots   Pr[w]   FAIL   honest Pr[w]-1/n");

  struct AttackCell {
    int n;
    int k;
    std::size_t honest_index;
    std::size_t sweep_index;
  };
  std::vector<AttackCell> cells;
  SweepSpec sweep;
  sweep.threads = 0;
  std::vector<std::string> labels;
  for (const int n : {100, 256, 400, 784}) {
    const Value w = static_cast<Value>(n / 4);
    ScenarioSpec honest;
    honest.protocol = "phase-async-lead";
    honest.protocol_key = 0xfadeull + n;
    honest.n = n;
    honest.trials =
        std::max<std::size_t>(100, 50'000'000ull / (static_cast<std::size_t>(n) * n));
    honest.seed = n;
    const std::size_t honest_index = sweep.scenarios.size();
    sweep.add(honest);
    labels.emplace_back("honest");

    // Sub-threshold coalition sizes: fractions of sqrt(n) (Theorem 6.1's
    // regime is k <= sqrt(n)/10; we sweep up to ~2/3 sqrt(n), all of which
    // leave zero free slots under equal spacing).
    const int s = static_cast<int>(std::sqrt(static_cast<double>(n)));
    for (const int k : {std::max(2, s / 4), std::max(3, s / 2), std::max(4, 2 * s / 3)}) {
      ScenarioSpec spec = honest;
      spec.deviation = "phase-rushing";
      spec.coalition = CoalitionSpec::equally_spaced(k);
      spec.target = w;
      spec.trials = 30;
      spec.seed = 13 * n + k;
      cells.push_back({n, k, honest_index, sweep.scenarios.size()});
      sweep.add(spec);
      labels.emplace_back("attacked");
    }
  }
  const auto results = h.run_sweep(sweep, labels);

  for (const AttackCell& cell : cells) {
    const ScenarioSpec& spec = sweep.scenarios[cell.sweep_index];
    const ScenarioResult& r = results[cell.sweep_index];
    const ScenarioResult& honest_r = results[cell.honest_index];
    // Free-slot count for the table: from the deviation itself.
    PhaseAsyncLeadProtocol protocol(cell.n, spec.protocol_key);
    PhaseRushingDeviation probe(Coalition::equally_spaced(cell.n, cell.k), spec.target,
                                protocol);
    std::printf("%6d  %3d   %10d   %5.3f   %4.2f   %16.5f\n", cell.n, cell.k,
                probe.free_slots(0), r.outcomes.leader_rate(spec.target),
                r.outcomes.fail_rate(),
                honest_r.outcomes.leader_rate(spec.target) - 1.0 / cell.n);
  }
  h.note("expected shape: free slots = 0, Pr[w] ~ 0, FAIL ~ 1 in the resilient band");
  return 0;
}
