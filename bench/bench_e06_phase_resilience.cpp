// E6 (Theorem 6.1): PhaseAsyncLead is resilient for k = O(sqrt(n)).  The
// strongest known deviation (rushing + free-slot steering) gains nothing
// below the threshold: no free slots exist, segments decohere, executions
// FAIL — which solution preference makes worthless to rational coalitions.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "attacks/coalition.h"
#include "attacks/phase_rushing.h"
#include "harness.h"
#include "protocols/phase_async_lead.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e06", "E6 / Theorem 6.1",
                   "PhaseAsyncLead resilience: sub-sqrt(n) coalitions gain nothing",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header("     n    k   free slots   Pr[w]   FAIL   honest Pr[w]-1/n");

  for (const int n : {100, 256, 400, 784}) {
    const Value w = static_cast<Value>(n / 4);
    ScenarioSpec honest;
    honest.protocol = "phase-async-lead";
    honest.protocol_key = 0xfadeull + n;
    honest.n = n;
    honest.trials =
        std::max<std::size_t>(100, 50'000'000ull / (static_cast<std::size_t>(n) * n));
    honest.seed = n;
    honest.threads = 0;
    const auto honest_r = h.run(honest, "honest");

    // Sub-threshold coalition sizes: fractions of sqrt(n) (Theorem 6.1's
    // regime is k <= sqrt(n)/10; we sweep up to ~2/3 sqrt(n), all of which
    // leave zero free slots under equal spacing).
    const int s = static_cast<int>(std::sqrt(static_cast<double>(n)));
    for (const int k : {std::max(2, s / 4), std::max(3, s / 2), std::max(4, 2 * s / 3)}) {
      // Free-slot count for the table: from the deviation itself.
      PhaseAsyncLeadProtocol protocol(n, honest.protocol_key);
      PhaseRushingDeviation probe(Coalition::equally_spaced(n, k), w, protocol);
      ScenarioSpec spec = honest;
      spec.deviation = "phase-rushing";
      spec.coalition = CoalitionSpec::equally_spaced(k);
      spec.target = w;
      spec.trials = 30;
      spec.seed = 13 * n + k;
      spec.threads = 1;
      const auto r = h.run(spec);
      std::printf("%6d  %3d   %10d   %5.3f   %4.2f   %16.5f\n", n, k, probe.free_slots(0),
                  r.outcomes.leader_rate(w), r.outcomes.fail_rate(),
                  honest_r.outcomes.leader_rate(w) - 1.0 / n);
    }
  }
  h.note("expected shape: free slots = 0, Pr[w] ~ 0, FAIL ~ 1 in the resilient band");
  return 0;
}
