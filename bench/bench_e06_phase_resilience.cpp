// E6 (Theorem 6.1): PhaseAsyncLead is resilient for k = O(sqrt(n)).  The
// strongest known deviation (rushing + free-slot steering) gains nothing
// below the threshold: no free slots exist, segments decohere, executions
// FAIL — which solution preference makes worthless to rational coalitions.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "analysis/experiment.h"
#include "attacks/coalition.h"
#include "attacks/phase_rushing.h"
#include "bench_util.h"
#include "protocols/phase_async_lead.h"

int main() {
  using namespace fle;
  bench::title("E6 / Theorem 6.1",
               "PhaseAsyncLead resilience: sub-sqrt(n) coalitions gain nothing");
  bench::row_header("     n    k   free slots   Pr[w]   FAIL   honest Pr[w]-1/n");

  for (const int n : {100, 256, 400, 784}) {
    PhaseAsyncLeadProtocol protocol(n, 0xfadeull + n);
    const Value w = static_cast<Value>(n / 4);
    ExperimentConfig honest_cfg;
    honest_cfg.n = n;
    honest_cfg.trials =
        std::max<std::size_t>(100, 50'000'000ull / (static_cast<std::size_t>(n) * n));
    honest_cfg.seed = n;
    const auto honest = run_trials(protocol, nullptr, honest_cfg);

    // Sub-threshold coalition sizes: fractions of sqrt(n) (Theorem 6.1's
    // regime is k <= sqrt(n)/10; we sweep up to ~2/3 sqrt(n), all of which
    // leave zero free slots under equal spacing).
    const int s = static_cast<int>(std::sqrt(static_cast<double>(n)));
    for (const int k : {std::max(2, s / 4), std::max(3, s / 2), std::max(4, 2 * s / 3)}) {
      PhaseRushingDeviation deviation(Coalition::equally_spaced(n, k), w, protocol);
      const int free = deviation.free_slots(0);
      ExperimentConfig cfg;
      cfg.n = n;
      cfg.trials = 30;
      cfg.seed = 13 * n + k;
      const auto r = run_trials(protocol, &deviation, cfg);
      std::printf("%6d  %3d   %10d   %5.3f   %4.2f   %16.5f\n", n, k, free,
                  r.outcomes.leader_rate(w), r.outcomes.fail_rate(),
                  honest.outcomes.leader_rate(w) - 1.0 / n);
    }
  }
  bench::note("expected shape: free slots = 0, Pr[w] ~ 0, FAIL ~ 1 in the resilient band");
  return 0;
}
