// Micro-benchmarks (google-benchmark): engine throughput, PRF evaluation,
// and full-protocol execution latency.  These are sanity-of-substrate
// numbers, not paper claims.

#include <benchmark/benchmark.h>

#include "core/random_function.h"
#include "core/rng.h"
#include "protocols/alead_uni.h"
#include "protocols/basic_lead.h"
#include "protocols/phase_async_lead.h"
#include "sim/engine.h"

namespace {

using namespace fle;

void BM_Mix64(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_XoshiroBelow(benchmark::State& state) {
  Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1000));
  }
}
BENCHMARK(BM_XoshiroBelow);

void BM_RandomFunctionEvaluate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int l = RandomFunction::default_l(n);
  RandomFunction f(1, n, RandomFunction::default_m(n), l);
  Xoshiro256 rng(3);
  std::vector<Value> d(static_cast<std::size_t>(n));
  std::vector<Value> v(static_cast<std::size_t>(n - l));
  for (auto& x : d) x = rng.below(static_cast<std::uint64_t>(n));
  for (auto& x : v) x = rng.below(RandomFunction::default_m(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.evaluate(d, v));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d.size() + v.size()));
}
BENCHMARK(BM_RandomFunctionEvaluate)->Arg(64)->Arg(256)->Arg(1024);

void BM_EngineBasicLead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BasicLeadProtocol protocol;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const Outcome o = run_honest(protocol, n, ++seed);
    benchmark::DoNotOptimize(o);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_EngineBasicLead)->Arg(32)->Arg(128)->Arg(512);

void BM_EngineALeadUni(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ALeadUniProtocol protocol;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_honest(protocol, n, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_EngineALeadUni)->Arg(32)->Arg(128)->Arg(512);

void BM_EnginePhaseAsyncLead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PhaseAsyncLeadProtocol protocol(n, 0x5eedull);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_honest(protocol, n, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n);
}
BENCHMARK(BM_EnginePhaseAsyncLead)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
