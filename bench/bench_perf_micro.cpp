// Micro-benchmarks (google-benchmark): engine throughput, PRF evaluation,
// full-protocol execution latency, engine construction-vs-reuse, and
// end-to-end run_scenario throughput.  These are sanity-of-substrate
// numbers, not paper claims.
//
// The *_ConstructEach / *_Reused pairs measure the PR-2 zero-allocation
// execution model: ConstructEach builds a fresh engine and heap-allocated
// strategy vector per trial (the pre-reuse behaviour); Reused rearms one
// engine with reset() and rebuilds strategies in a StrategyArena.  The
// allocations_per_trial counter (counting operator new shim below) is the
// steady-state allocation count of the measured loop — 0 on the reused
// ring path.

#include <benchmark/benchmark.h>

#include "core/counting_new.inc"

#include <memory>
#include <span>
#include <vector>

#include "api/scenario.h"
#include "api/sweep.h"
#include "attacks/coalition.h"
#include "core/ctr_rng.h"
#include "core/random_function.h"
#include "core/rng.h"
#include "protocols/alead_uni.h"
#include "protocols/basic_lead.h"
#include "protocols/phase_async_lead.h"
#include "protocols/shamir_lead.h"
#include "protocols/sync_lead.h"
#include "sim/arena.h"
#include "sim/engine.h"
#include "sim/graph_engine.h"
#include "sim/lane_engine.h"
#include "sim/sync_engine.h"

namespace {

using namespace fle;

std::atomic<std::uint64_t>& g_allocations = counting_new::allocations;

/// Attaches allocations/iteration of the timed loop to the benchmark.
class AllocationScope {
 public:
  explicit AllocationScope(benchmark::State& state,
                           const char* counter = "allocations_per_trial")
      : state_(state),
        counter_(counter),
        start_(g_allocations.load(std::memory_order_relaxed)) {}
  ~AllocationScope() {
    const auto total = g_allocations.load(std::memory_order_relaxed) - start_;
    state_.counters[counter_] = benchmark::Counter(
        static_cast<double>(total) / static_cast<double>(state_.iterations()));
  }

 private:
  benchmark::State& state_;
  const char* counter_;
  std::uint64_t start_;
};

void BM_Mix64(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    x = mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_XoshiroBelow(benchmark::State& state) {
  Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1000));
  }
}
BENCHMARK(BM_XoshiroBelow);

void BM_CtrRngBelow(benchmark::State& state) {
  CtrRng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1000));
  }
}
BENCHMARK(BM_CtrRngBelow);

void BM_CtrRngAt(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CtrRng::at(7, ++i));
  }
}
BENCHMARK(BM_CtrRngAt);

void BM_RandomFunctionEvaluate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int l = RandomFunction::default_l(n);
  RandomFunction f(1, n, RandomFunction::default_m(n), l);
  Xoshiro256 rng(3);
  std::vector<Value> d(static_cast<std::size_t>(n));
  std::vector<Value> v(static_cast<std::size_t>(n - l));
  for (auto& x : d) x = rng.below(static_cast<std::uint64_t>(n));
  for (auto& x : v) x = rng.below(RandomFunction::default_m(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.evaluate(d, v));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(d.size() + v.size()));
}
BENCHMARK(BM_RandomFunctionEvaluate)->Arg(64)->Arg(256)->Arg(1024);

// ---- ring engine: full honest executions (reused workspace via run_honest)

void BM_EngineBasicLead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BasicLeadProtocol protocol;
  std::uint64_t seed = 0;
  (void)run_honest(protocol, n, ++seed);  // warm the reusable workspace
  AllocationScope allocations(state);
  for (auto _ : state) {
    const Outcome o = run_honest(protocol, n, ++seed);
    benchmark::DoNotOptimize(o);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_EngineBasicLead)->Arg(32)->Arg(128)->Arg(512);

void BM_EngineALeadUni(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ALeadUniProtocol protocol;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_honest(protocol, n, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) * n);
}
BENCHMARK(BM_EngineALeadUni)->Arg(32)->Arg(128)->Arg(512);

void BM_EnginePhaseAsyncLead(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PhaseAsyncLeadProtocol protocol(n, 0x5eedull);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_honest(protocol, n, ++seed));
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n);
}
BENCHMARK(BM_EnginePhaseAsyncLead)->Arg(32)->Arg(128)->Arg(512);

// ---- construction vs reuse: the zero-allocation execution model ----------

/// Pre-PR trial body: fresh engine, make_unique'd strategy vector.
void BM_RingTrialConstructEach(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BasicLeadProtocol protocol;
  const std::uint64_t step_limit = protocol.honest_message_bound(n) * 2 + 1024;
  std::uint64_t seed = 0;
  AllocationScope allocations(state);
  for (auto _ : state) {
    EngineOptions options;
    options.step_limit = step_limit;
    RingEngine engine(n, ++seed, std::move(options));
    std::vector<std::unique_ptr<RingStrategy>> strategies;
    strategies.reserve(static_cast<std::size_t>(n));
    for (ProcessorId p = 0; p < n; ++p) strategies.push_back(protocol.make_strategy(p, n));
    benchmark::DoNotOptimize(engine.run(std::move(strategies)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingTrialConstructEach)->Arg(32)->Arg(128);

/// PR-2 trial body: one engine reset per trial, strategies in an arena.
void BM_RingTrialReused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BasicLeadProtocol protocol;
  EngineOptions options;
  options.step_limit = protocol.honest_message_bound(n) * 2 + 1024;
  RingEngine engine(n, 1, std::move(options));
  StrategyArena arena;
  std::vector<RingStrategy*> profile;
  std::uint64_t seed = 0;
  AllocationScope allocations(state);
  for (auto _ : state) {
    engine.reset(++seed);
    arena.rewind();
    profile.clear();
    for (ProcessorId p = 0; p < n; ++p) profile.push_back(protocol.emplace_strategy(arena, p, n));
    benchmark::DoNotOptimize(engine.run(std::span<RingStrategy* const>(profile)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingTrialReused)->Arg(32)->Arg(128);

void BM_GraphTrialConstructEach(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ShamirLeadProtocol protocol(n);
  std::uint64_t seed = 0;
  AllocationScope allocations(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_honest_graph(protocol, n, ++seed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphTrialConstructEach)->Arg(8)->Arg(16);

void BM_GraphTrialReused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ShamirLeadProtocol protocol(n);
  GraphEngineOptions options;
  options.step_limit = protocol.honest_message_bound(n) * 2 + 4096;
  GraphEngine engine(n, 1, std::move(options));
  StrategyArena arena;
  std::vector<GraphStrategy*> profile;
  std::uint64_t seed = 0;
  AllocationScope allocations(state);
  for (auto _ : state) {
    engine.reset(++seed);
    arena.rewind();
    profile.clear();
    for (ProcessorId p = 0; p < n; ++p) profile.push_back(protocol.emplace_strategy(arena, p, n));
    benchmark::DoNotOptimize(engine.run(std::span<GraphStrategy* const>(profile)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphTrialReused)->Arg(8)->Arg(16);

void BM_SyncTrialConstructEach(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SyncBroadcastLeadProtocol protocol;
  std::uint64_t seed = 0;
  AllocationScope allocations(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_honest_sync(protocol, n, ++seed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyncTrialConstructEach)->Arg(16)->Arg(64);

void BM_SyncTrialReused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SyncBroadcastLeadProtocol protocol;
  SyncEngineOptions options;
  options.round_limit = protocol.round_bound(n);
  SyncEngine engine(n, 1, options);
  StrategyArena arena;
  std::vector<SyncStrategy*> profile;
  std::uint64_t seed = 0;
  AllocationScope allocations(state);
  for (auto _ : state) {
    engine.reset(++seed);
    arena.rewind();
    profile.clear();
    for (ProcessorId p = 0; p < n; ++p) profile.push_back(protocol.emplace_strategy(arena, p, n));
    benchmark::DoNotOptimize(engine.run(std::span<SyncStrategy* const>(profile)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyncTrialReused)->Arg(16)->Arg(64);

// ---- batched lane engine (DESIGN.md §10): window throughput --------------

void BM_LaneEngineRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LaneEngineOptions options;
  options.lanes = 8;
  LaneEngine engine(n, LaneKernelId::kBasicLead, options);
  std::vector<std::uint64_t> seeds(256);
  std::vector<LaneTrialResult> results(seeds.size());
  std::uint64_t base = 0;
  AllocationScope allocations(state, "allocations_per_window");
  for (auto _ : state) {
    for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = ++base;
    engine.run_window(seeds, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(seeds.size()));
}
BENCHMARK(BM_LaneEngineRing)->Arg(32)->Arg(128);

// The general lane path, measured honestly: fast_paths=false forces every
// trial through the burst loop over the ring-buffer inbox column (no
// token-sum shortcut), so this row is the vectorized-general-path claim
// the release-perf gate holds against the scalar run_scenario row.
void BM_LaneEngineRingGeneral(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LaneEngineOptions options;
  options.lanes = 8;
  options.fast_paths = false;
  LaneEngine engine(n, LaneKernelId::kBasicLead, options);
  std::vector<std::uint64_t> seeds(256);
  std::vector<LaneTrialResult> results(seeds.size());
  std::uint64_t base = 0;
  AllocationScope allocations(state, "allocations_per_window");
  for (auto _ : state) {
    for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = ++base;
    engine.run_window(seeds, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(seeds.size()));
}
BENCHMARK(BM_LaneEngineRingGeneral)->Arg(32)->Arg(128);

// Deviated lane kernels: the Lemma 4.1 rushing coalition (k = n/4, equally
// spaced) on the A-LEADuni kernel, general path (no constant fast path).
void BM_LaneEngineRingDeviated(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Coalition coalition = Coalition::equally_spaced(n, n / 4, 1);
  LaneEngineOptions options;
  options.lanes = 8;
  options.fast_paths = false;
  options.deviation.id = LaneDeviationId::kRushing;
  options.deviation.members = coalition.members();
  options.deviation.segment_lengths = coalition.segment_lengths();
  options.deviation.target = 1;
  LaneEngine engine(n, LaneKernelId::kALeadUni, options);
  std::vector<std::uint64_t> seeds(256);
  std::vector<LaneTrialResult> results(seeds.size());
  std::uint64_t base = 0;
  AllocationScope allocations(state, "allocations_per_window");
  for (auto _ : state) {
    for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = ++base;
    engine.run_window(seeds, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(seeds.size()));
}
BENCHMARK(BM_LaneEngineRingDeviated)->Arg(32)->Arg(128);

// Sync-runtime lanes: window throughput of the devirtualized broadcast
// kernel (compare BM_SyncTrialReused for the scalar per-trial cost).
void BM_SyncLaneEngine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SyncLaneEngineOptions options;
  options.lanes = 8;
  SyncLaneEngine engine(n, SyncLaneKernelId::kSyncBroadcast, options);
  std::vector<std::uint64_t> seeds(256);
  std::vector<LaneTrialResult> results(seeds.size());
  std::uint64_t base = 0;
  AllocationScope allocations(state, "allocations_per_window");
  for (auto _ : state) {
    for (std::size_t i = 0; i < seeds.size(); ++i) seeds[i] = ++base;
    engine.run_window(seeds, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(seeds.size()));
}
BENCHMARK(BM_SyncLaneEngine)->Arg(16)->Arg(64);

// ---- end-to-end run_scenario throughput (items/sec = trials/sec) ---------

void run_scenario_throughput(benchmark::State& state, ScenarioSpec spec) {
  AllocationScope allocations(state, "allocations_per_batch");
  for (auto _ : state) {
    spec.seed += 1;  // fresh trial seeds each batch, same workload shape
    const ScenarioResult result = run_scenario(spec);
    benchmark::DoNotOptimize(result.outcomes.trials());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(spec.trials));
}

void BM_RunScenarioRing(benchmark::State& state) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kRing;
  spec.protocol = "basic-lead";
  spec.n = static_cast<int>(state.range(0));
  spec.trials = 100;
  spec.threads = 1;
  run_scenario_throughput(state, spec);
}
BENCHMARK(BM_RunScenarioRing)->Arg(32)->Arg(128);

// The scalar-vs-lane comparison rows: identical workloads with the engine
// pinned, so the items/sec ratio is the lane path's end-to-end win (the
// results themselves are bit-identical — that is gated in the test suite).
void BM_RunScenarioRingScalar(benchmark::State& state) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kRing;
  spec.protocol = "basic-lead";
  spec.n = static_cast<int>(state.range(0));
  spec.trials = 100;
  spec.threads = 1;
  spec.engine = EngineKind::kScalar;
  run_scenario_throughput(state, spec);
}
BENCHMARK(BM_RunScenarioRingScalar)->Arg(32)->Arg(128);

void BM_RunScenarioRingLanes(benchmark::State& state) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kRing;
  spec.protocol = "basic-lead";
  spec.n = static_cast<int>(state.range(0));
  spec.trials = 100;
  spec.threads = 1;
  spec.engine = EngineKind::kLanes;
  run_scenario_throughput(state, spec);
}
BENCHMARK(BM_RunScenarioRingLanes)->Arg(32)->Arg(128);

void BM_RunScenarioRingParallel(benchmark::State& state) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kRing;
  spec.protocol = "basic-lead";
  spec.n = 64;
  spec.trials = 512;
  spec.threads = 0;  // one worker per core
  run_scenario_throughput(state, spec);
}
BENCHMARK(BM_RunScenarioRingParallel);

void BM_RunScenarioGraph(benchmark::State& state) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kGraph;
  spec.protocol = "shamir-lead";
  spec.n = 8;
  spec.trials = 50;
  spec.threads = 1;
  run_scenario_throughput(state, spec);
}
BENCHMARK(BM_RunScenarioGraph);

void BM_RunScenarioSync(benchmark::State& state) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kSync;
  spec.protocol = "sync-broadcast-lead";
  spec.n = 16;
  spec.trials = 200;
  spec.threads = 1;
  run_scenario_throughput(state, spec);
}
BENCHMARK(BM_RunScenarioSync);

// Scalar-vs-lane comparison rows for the PR-6 lane extensions: the
// deviated ring profiles and the sync runtime, engines pinned as above.
void BM_RunScenarioDeviatedScalar(benchmark::State& state) {
  ScenarioSpec spec;
  spec.protocol = "basic-lead";
  spec.deviation = "basic-single";
  spec.target = 3;
  spec.n = 128;
  spec.trials = 100;
  spec.threads = 1;
  spec.engine = EngineKind::kScalar;
  run_scenario_throughput(state, spec);
}
BENCHMARK(BM_RunScenarioDeviatedScalar);

void BM_RunScenarioDeviatedLanes(benchmark::State& state) {
  ScenarioSpec spec;
  spec.protocol = "basic-lead";
  spec.deviation = "basic-single";
  spec.target = 3;
  spec.n = 128;
  spec.trials = 100;
  spec.threads = 1;
  spec.engine = EngineKind::kLanes;
  run_scenario_throughput(state, spec);
}
BENCHMARK(BM_RunScenarioDeviatedLanes);

void BM_RunScenarioSyncScalar(benchmark::State& state) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kSync;
  spec.protocol = "sync-broadcast-lead";
  spec.n = 16;
  spec.trials = 200;
  spec.threads = 1;
  spec.engine = EngineKind::kScalar;
  run_scenario_throughput(state, spec);
}
BENCHMARK(BM_RunScenarioSyncScalar);

void BM_RunScenarioSyncLanes(benchmark::State& state) {
  ScenarioSpec spec;
  spec.topology = TopologyKind::kSync;
  spec.protocol = "sync-broadcast-lead";
  spec.n = 16;
  spec.trials = 200;
  spec.threads = 1;
  spec.engine = EngineKind::kLanes;
  run_scenario_throughput(state, spec);
}
BENCHMARK(BM_RunScenarioSyncLanes);

// ---- sweep vs serial: cross-scenario work stealing (items/sec = trials) --
//
// The PR-4 acceptance workload, shaped like the drivers that motivated the
// sweep layer: hundreds of fuzz-spec-sized scenarios (a couple of trials
// each — smaller than the worker count, so scenario-at-a-time execution
// strands workers AND pays a full submission round-trip per scenario) plus
// a few larger table rows.  Serial = one run_scenario call per scenario;
// Batched = the identical scenarios as ONE run_sweep submission sharing
// the executor's chunk queue.  Same trials, same seeds, same results — the
// items/sec ratio is the sweep layer's win (>= 1.5x even on one core,
// where only the submission amortization shows; larger on multicore,
// where the stranded workers come back too).

SweepSpec mixed_sweep_spec() {
  SweepSpec sweep;
  sweep.threads = 8;
  for (int i = 0; i < 320; ++i) {
    ScenarioSpec spec;
    spec.protocol = "basic-lead";
    spec.n = 8;
    spec.trials = 2;
    spec.seed = 100 + static_cast<std::uint64_t>(i);
    sweep.add(spec);
  }
  for (int i = 0; i < 4; ++i) {
    ScenarioSpec spec;
    spec.protocol = "basic-lead";
    spec.n = 64;
    spec.trials = 8;
    spec.seed = 900 + static_cast<std::uint64_t>(i);
    sweep.add(spec);
  }
  return sweep;
}

std::int64_t sweep_trials(const SweepSpec& sweep) {
  std::int64_t total = 0;
  for (const ScenarioSpec& spec : sweep.scenarios) {
    total += static_cast<std::int64_t>(spec.trials);
  }
  return total;
}

void BM_MixedSweepSerial(benchmark::State& state) {
  const SweepSpec sweep = mixed_sweep_spec();
  for (auto _ : state) {
    for (ScenarioSpec spec : sweep.scenarios) {
      spec.threads = sweep.threads;
      benchmark::DoNotOptimize(run_scenario(spec).outcomes.trials());
    }
  }
  state.SetItemsProcessed(state.iterations() * sweep_trials(sweep));
}
BENCHMARK(BM_MixedSweepSerial)->UseRealTime();

void BM_MixedSweepBatched(benchmark::State& state) {
  const SweepSpec sweep = mixed_sweep_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_sweep(sweep).size());
  }
  state.SetItemsProcessed(state.iterations() * sweep_trials(sweep));
}
BENCHMARK(BM_MixedSweepBatched)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
