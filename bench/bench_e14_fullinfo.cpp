// E14 (related work, reproduced): the full-information comparators.
// Saks' pass-the-baton tolerates near-linear coalitions (O(n / log n));
// the one-round majority coin leaks Theta(k / sqrt(n)) bias.  Both assume
// the (strong) broadcast full-information model — the paper's ring
// protocols achieve sqrt(n) resilience with message passing only.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "fullinfo/baton.h"
#include "fullinfo/majority.h"

int main() {
  using namespace fle;
  bench::title("E14 / full-information comparators (Saks, Ben-Or & Linial)",
               "Bias vs coalition size in the broadcast model");

  bench::row_header("baton n=64:    k   Pr[target wins]   honest 1/(n-1)");
  {
    const int n = 64;
    BatonGame game(n);
    const ProcessorId target = n - 1;
    Xoshiro256 rng(2024);
    for (const int k : {0, 2, 4, 8, 16, 32}) {
      std::vector<ProcessorId> coalition;
      for (int i = 1; i <= k; ++i) coalition.push_back(i);
      BatonGreedyAdversary adv(coalition, target);
      int hits = 0;
      const int trials = 4000;
      for (int i = 0; i < trials; ++i) {
        hits += play_turn_game(game, coalition, k > 0 ? &adv : nullptr, rng) ==
                static_cast<Value>(target);
      }
      std::printf("%17d   %15.4f   %14.4f\n", k, static_cast<double>(hits) / trials,
                  1.0 / (n - 1));
    }
  }
  bench::note("expected shape: influence grows slowly — the baton resists much larger");
  bench::note("coalitions than sqrt(n) (Saks: O(n/log n)), at broadcast-model cost");

  bench::row_header("majority:     n     k   measured bias   binomial exact   k/sqrt(2 pi n)");
  {
    Xoshiro256 rng(7);
    for (const int n : {49, 225}) {
      MajorityCoinGame game(n);
      for (const int k : {2, 4, 8}) {
        std::vector<ProcessorId> coalition;
        for (int i = 0; i < k; ++i) coalition.push_back(i);
        MajorityTargetAdversary adv(1);
        int ones = 0;
        const int trials = 20000;
        for (int i = 0; i < trials; ++i) {
          ones += play_turn_game(game, coalition, &adv, rng) == 1;
        }
        std::printf("%19d  %4d   %13.4f   %14.4f   %14.4f\n", n, k,
                    static_cast<double>(ones) / trials - 0.5, majority_bias_estimate(n, k),
                    k / std::sqrt(2.0 * M_PI * n));
      }
    }
  }
  bench::note("expected shape: measured = exact binomial = Gaussian k/sqrt(2 pi n):");
  bench::note("single-round coins leak linearly in k — the reason the paper's ring");
  bench::note("protocols never let a round's value be decided by a vote");
  return 0;
}
