// E14 (related work, reproduced): the full-information comparators.
// Saks' pass-the-baton tolerates near-linear coalitions (O(n / log n));
// the one-round majority coin leaks Theta(k / sqrt(n)) bias.  Both assume
// the (strong) broadcast full-information model — the paper's ring
// protocols achieve sqrt(n) resilience with message passing only.

#include <cmath>
#include <cstdio>
#include <vector>

#include "fullinfo/majority.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e14", "E14 / full-information comparators (Saks, Ben-Or & Linial)",
                   "Bias vs coalition size in the broadcast model",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();

  h.row_header("baton n=64:    k   Pr[target wins]   honest 1/(n-1)");
  {
    const int n = 64;
    for (const int k : {0, 2, 4, 8, 16, 32}) {
      ScenarioSpec spec;
      spec.topology = TopologyKind::kFullInfo;
      spec.protocol = "baton";
      spec.n = n;
      spec.trials = 4000;
      spec.seed = 2024 + k;
      spec.target = static_cast<Value>(n - 1);
      if (k > 0) {
        spec.deviation = "baton-greedy";
        std::vector<ProcessorId> members;
        for (int i = 1; i <= k; ++i) members.push_back(i);
        spec.coalition = CoalitionSpec::custom(members);
      }
      const auto r = h.run(spec);
      std::printf("%17d   %15.4f   %14.4f\n", k, r.outcomes.leader_rate(spec.target),
                  1.0 / (n - 1));
    }
  }
  h.note("expected shape: influence grows slowly — the baton resists much larger");
  h.note("coalitions than sqrt(n) (Saks: O(n/log n)), at broadcast-model cost");

  h.row_header("majority:     n     k   measured bias   binomial exact   k/sqrt(2 pi n)");
  for (const int n : {49, 225}) {
    for (const int k : {2, 4, 8}) {
      ScenarioSpec spec;
      spec.topology = TopologyKind::kFullInfo;
      spec.protocol = "majority-coin";
      spec.deviation = "majority-target";
      std::vector<ProcessorId> members;
      for (int i = 0; i < k; ++i) members.push_back(i);
      spec.coalition = CoalitionSpec::custom(members);
      spec.target = 1;
      spec.n = n;
      spec.trials = 20000;
      spec.seed = 7 * n + k;
      spec.threads = 0;
      const auto r = h.run(spec);
      const double ones = static_cast<double>(r.outcomes.count(1)) /
                          static_cast<double>(r.trials);
      std::printf("%19d  %4d   %13.4f   %14.4f   %14.4f\n", n, k, ones - 0.5,
                  majority_bias_estimate(n, k), k / std::sqrt(2.0 * M_PI * n));
    }
  }
  h.note("expected shape: measured = exact binomial = Gaussian k/sqrt(2 pi n):");
  h.note("single-round coins leak linearly in k — the reason the paper's ring");
  h.note("protocols never let a round's value be decided by a vote");
  return 0;
}
