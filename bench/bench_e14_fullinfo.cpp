// E14 (related work, reproduced): the full-information comparators.
// Saks' pass-the-baton tolerates near-linear coalitions (O(n / log n));
// the one-round majority coin leaks Theta(k / sqrt(n)) bias.  Both assume
// the (strong) broadcast full-information model — the paper's ring
// protocols achieve sqrt(n) resilience with message passing only.
//
// Both tables (12 scenarios, 4000–20000 trials each) run as ONE sweep.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "fullinfo/majority.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e14", "E14 / full-information comparators (Saks, Ben-Or & Linial)",
                   "Bias vs coalition size in the broadcast model",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();

  const int baton_n = 64;
  const std::vector<int> baton_ks = {0, 2, 4, 8, 16, 32};
  struct MajorityCell {
    int n;
    int k;
  };
  std::vector<MajorityCell> majority_cells;

  SweepSpec sweep;
  sweep.threads = 0;
  std::vector<std::string> labels;
  for (const int k : baton_ks) {
    ScenarioSpec spec;
    spec.topology = TopologyKind::kFullInfo;
    spec.protocol = "baton";
    spec.n = baton_n;
    spec.trials = 4000;
    spec.seed = 2024 + k;
    spec.target = static_cast<Value>(baton_n - 1);
    if (k > 0) {
      spec.deviation = "baton-greedy";
      std::vector<ProcessorId> members;
      for (int i = 1; i <= k; ++i) members.push_back(i);
      spec.coalition = CoalitionSpec::custom(members);
    }
    sweep.add(spec);
    labels.emplace_back("baton");
  }
  for (const int n : {49, 225}) {
    for (const int k : {2, 4, 8}) {
      ScenarioSpec spec;
      spec.topology = TopologyKind::kFullInfo;
      spec.protocol = "majority-coin";
      spec.deviation = "majority-target";
      std::vector<ProcessorId> members;
      for (int i = 0; i < k; ++i) members.push_back(i);
      spec.coalition = CoalitionSpec::custom(members);
      spec.target = 1;
      spec.n = n;
      spec.trials = 20000;
      spec.seed = 7 * n + k;
      sweep.add(spec);
      labels.emplace_back("majority");
      majority_cells.push_back({n, k});
    }
  }
  const auto results = h.run_sweep(sweep, labels);

  h.row_header("baton n=64:    k   Pr[target wins]   honest 1/(n-1)");
  for (std::size_t i = 0; i < baton_ks.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::printf("%17d   %15.4f   %14.4f\n", baton_ks[i],
                r.outcomes.leader_rate(sweep.scenarios[i].target), 1.0 / (baton_n - 1));
  }
  h.note("expected shape: influence grows slowly — the baton resists much larger");
  h.note("coalitions than sqrt(n) (Saks: O(n/log n)), at broadcast-model cost");

  h.row_header("majority:     n     k   measured bias   binomial exact   k/sqrt(2 pi n)");
  for (std::size_t i = 0; i < majority_cells.size(); ++i) {
    const auto [n, k] = majority_cells[i];
    const ScenarioResult& r = results[baton_ks.size() + i];
    const double ones =
        static_cast<double>(r.outcomes.count(1)) / static_cast<double>(r.trials);
    std::printf("%19d  %4d   %13.4f   %14.4f   %14.4f\n", n, k, ones - 0.5,
                majority_bias_estimate(n, k), k / std::sqrt(2.0 * M_PI * n));
  }
  h.note("expected shape: measured = exact binomial = Gaussian k/sqrt(2 pi n):");
  h.note("single-round coins leak linearly in k — the reason the paper's ring");
  h.note("protocols never let a round's value be decided by a vote");
  return 0;
}
