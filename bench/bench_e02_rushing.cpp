// E2 (Lemma 4.1 / Theorem 4.2): the rushing attack controls A-LEADuni with
// k >= sqrt(n) equally spaced adversaries; the precondition l_j <= k-1
// delimits exactly where the attack is defined.
//
// The whole table runs as ONE sweep (Harness::run_sweep): every
// precondition-satisfying (n, k) cell shares the executor's work queue.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/coalition.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h(
      "e02", "E2 / Lemma 4.1, Theorem 4.2",
      "A-LEADuni: k >= sqrt(n) equally spaced adversaries control the outcome",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.note("precondition: every honest segment l_j <= k-1 (equal spacing: n <= k^2)");
  h.row_header("     n     k   l_max   precond   attacked Pr[w]   FAIL");

  struct Cell {
    int n;
    int k;
    int l_max;
    bool precond;
    std::size_t sweep_index;  ///< into the sweep results; only when precond
  };
  std::vector<Cell> cells;
  SweepSpec sweep;
  for (const int n : {16, 64, 100, 256, 529, 1024}) {
    const int k_sqrt = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
    for (const int k : {k_sqrt - 1, k_sqrt, k_sqrt + 2}) {
      if (k < 2 || k >= n) continue;
      const auto coalition = Coalition::equally_spaced(n, k);
      Cell cell{n, k, coalition.max_segment_length(),
                coalition.rushing_precondition_holds(), 0};
      if (cell.precond) {
        ScenarioSpec spec;
        spec.protocol = "alead-uni";
        spec.deviation = "rushing";
        spec.coalition = CoalitionSpec::equally_spaced(k);
        spec.target = static_cast<Value>(n - 1);
        spec.n = n;
        spec.trials = 50;
        spec.seed = 11 * n + k;
        cell.sweep_index = sweep.scenarios.size();
        sweep.add(spec);
      }
      cells.push_back(cell);
    }
  }
  const auto results = h.run_sweep(sweep);

  for (const Cell& cell : cells) {
    double rate = 0.0;
    double fail = 0.0;
    if (cell.precond) {
      const ScenarioResult& r = results[cell.sweep_index];
      rate = r.outcomes.leader_rate(sweep.scenarios[cell.sweep_index].target);
      fail = r.outcomes.fail_rate();
    }
    std::printf("%6d  %4d   %5d   %7s   %14.4f   %4.2f\n", cell.n, cell.k, cell.l_max,
                cell.precond ? "yes" : "no", rate, fail);
  }
  h.note("expected shape: precond=yes rows show Pr[w] = 1.0; the boundary sits at k ~ sqrt(n)");
  return 0;
}
