// E2 (Lemma 4.1 / Theorem 4.2): the rushing attack controls A-LEADuni with
// k >= sqrt(n) equally spaced adversaries; the precondition l_j <= k-1
// delimits exactly where the attack is defined.

#include <cmath>
#include <cstdio>

#include "analysis/experiment.h"
#include "attacks/coalition.h"
#include "attacks/rushing.h"
#include "bench_util.h"
#include "protocols/alead_uni.h"

int main() {
  using namespace fle;
  bench::title("E2 / Lemma 4.1, Theorem 4.2",
               "A-LEADuni: k >= sqrt(n) equally spaced adversaries control the outcome");
  bench::note("precondition: every honest segment l_j <= k-1 (equal spacing: n <= k^2)");
  bench::row_header("     n     k   l_max   precond   attacked Pr[w]   FAIL");

  ALeadUniProtocol protocol;
  for (const int n : {16, 64, 100, 256, 529, 1024}) {
    const int k_sqrt = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
    for (const int k : {k_sqrt - 1, k_sqrt, k_sqrt + 2}) {
      if (k < 2 || k >= n) continue;
      const auto coalition = Coalition::equally_spaced(n, k);
      const bool precond = coalition.rushing_precondition_holds();
      double rate = 0.0;
      double fail = 0.0;
      if (precond) {
        const Value w = static_cast<Value>(n - 1);
        RushingDeviation deviation(coalition, w);
        ExperimentConfig cfg;
        cfg.n = n;
        cfg.trials = 50;
        cfg.seed = 11 * n + k;
        const auto r = run_trials(protocol, &deviation, cfg);
        rate = r.outcomes.leader_rate(w);
        fail = r.outcomes.fail_rate();
      }
      std::printf("%6d  %4d   %5d   %7s   %14.4f   %4.2f\n", n, k,
                  coalition.max_segment_length(), precond ? "yes" : "no", rate, fail);
    }
  }
  bench::note("expected shape: precond=yes rows show Pr[w] = 1.0; the boundary sits at k ~ sqrt(n)");
  return 0;
}
