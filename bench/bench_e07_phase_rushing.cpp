// E7 (remark after Theorem 6.1): PhaseAsyncLead is broken by
// k = sqrt(n) + 3 equally spaced adversaries steering the random function
// through their free late data slots.  This is the tightness half of the
// Theta(sqrt(n)) claim.

#include <cmath>
#include <cstdio>

#include "analysis/experiment.h"
#include "attacks/coalition.h"
#include "attacks/phase_rushing.h"
#include "bench_util.h"
#include "protocols/phase_async_lead.h"

int main() {
  using namespace fle;
  bench::title("E7 / Theorem 6.1 tightness",
               "PhaseAsyncLead: k = sqrt(n)+3 adversaries steer f to any target");
  bench::row_header("     n    k   min free slots   attacked Pr[w]   FAIL");

  for (const int n : {64, 100, 196, 324, 529}) {
    const int k = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))) + 3;
    PhaseAsyncLeadProtocol protocol(n, 0xd00dull + n);
    const auto coalition = Coalition::equally_spaced(n, k);
    const Value w = static_cast<Value>(2 * n / 3);
    PhaseRushingDeviation deviation(coalition, w, protocol, /*search_cap=*/96ull * n);
    int min_free = n;
    for (int j = 0; j < coalition.k(); ++j) min_free = std::min(min_free, deviation.free_slots(j));
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.trials = 25;
    cfg.seed = 3 * n;
    const auto r = run_trials(protocol, &deviation, cfg);
    std::printf("%6d  %4d   %14d   %14.4f   %4.2f\n", n, k, min_free,
                r.outcomes.leader_rate(w), r.outcomes.fail_rate());
  }
  bench::note("expected shape: >= 3 free slots per adversary and Pr[w] ~ 1 (paper:");
  bench::note("'every adversary can control the output almost for every input')");
  return 0;
}
