// E7 (remark after Theorem 6.1): PhaseAsyncLead is broken by
// k = sqrt(n) + 3 equally spaced adversaries steering the random function
// through their free late data slots.  This is the tightness half of the
// Theta(sqrt(n)) claim.
//
// All five attacked sizes run as ONE sweep (Harness::run_sweep).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "attacks/coalition.h"
#include "attacks/phase_rushing.h"
#include "harness.h"
#include "protocols/phase_async_lead.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e07", "E7 / Theorem 6.1 tightness",
                   "PhaseAsyncLead: k = sqrt(n)+3 adversaries steer f to any target",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header("     n    k   min free slots   attacked Pr[w]   FAIL");

  SweepSpec sweep;
  for (const int n : {64, 100, 196, 324, 529}) {
    const int k = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))) + 3;
    ScenarioSpec spec;
    spec.protocol = "phase-async-lead";
    spec.protocol_key = 0xd00dull + n;
    spec.deviation = "phase-rushing";
    spec.coalition = CoalitionSpec::equally_spaced(k);
    spec.target = static_cast<Value>(2 * n / 3);
    spec.search_cap = 96ull * n;
    spec.n = n;
    spec.trials = 25;
    spec.seed = 3 * n;
    sweep.add(spec);
  }
  const auto results = h.run_sweep(sweep);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioSpec& spec = sweep.scenarios[i];
    const int n = spec.n;
    const int k = spec.coalition.k;
    PhaseAsyncLeadProtocol protocol(n, spec.protocol_key);
    const auto coalition = Coalition::equally_spaced(n, k);
    PhaseRushingDeviation probe(coalition, spec.target, protocol, spec.search_cap);
    int min_free = n;
    for (int j = 0; j < coalition.k(); ++j) min_free = std::min(min_free, probe.free_slots(j));
    std::printf("%6d  %4d   %14d   %14.4f   %4.2f\n", n, k, min_free,
                results[i].outcomes.leader_rate(spec.target),
                results[i].outcomes.fail_rate());
  }
  h.note("expected shape: >= 3 free slots per adversary and Pr[w] ~ 1 (paper:");
  h.note("'every adversary can control the output almost for every input')");
  return 0;
}
