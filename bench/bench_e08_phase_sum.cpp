// E8 (Appendix E.4): phase validation with a *sum* output (PhaseSumLead)
// falls to a constant coalition of k = 4 via the validation covert channel
// — the ablation that motivates PhaseAsyncLead's random function.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace fle;
  bench::Harness h("e08", "E8 / Appendix E.4 (ablation: sum output instead of random f)",
                   "PhaseSumLead: k = 4 adversaries control any ring size");
  h.row_header("      n    k   attacked Pr[w]   FAIL   sync gap");

  for (const int n : {32, 64, 128, 256, 512, 1024}) {
    ScenarioSpec spec;
    spec.protocol = "phase-sum-lead";
    spec.deviation = "phase-sum";  // canonical k = 4 placement
    spec.target = static_cast<Value>(n - 3);
    spec.n = n;
    spec.trials = 25;
    spec.seed = 5 * n;
    const auto r = h.run(spec);
    std::printf("%7d    4   %14.4f   %4.2f   %8llu\n", n,
                r.outcomes.leader_rate(spec.target), r.outcomes.fail_rate(),
                static_cast<unsigned long long>(r.max_sync_gap));
  }
  h.note("expected shape: Pr[w] = 1 with k fixed at 4 for every n — contrast with");
  h.note("E7 where the random-f protocol needs k ~ sqrt(n); sync gap stays O(k):");
  h.note("the covert channel defeats the sum despite intact synchronization");
  return 0;
}
