// E8 (Appendix E.4): phase validation with a *sum* output (PhaseSumLead)
// falls to a constant coalition of k = 4 via the validation covert channel
// — the ablation that motivates PhaseAsyncLead's random function.
//
// The whole n-sweep is one executor submission (api/sweep.h).

#include <cstdio>
#include <vector>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e08", "E8 / Appendix E.4 (ablation: sum output instead of random f)",
                   "PhaseSumLead: k = 4 adversaries control any ring size",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header("      n    k   attacked Pr[w]   FAIL   sync gap");

  const std::vector<int> sizes = {32, 64, 128, 256, 512, 1024};
  SweepSpec sweep;
  for (const int n : sizes) {
    ScenarioSpec spec;
    spec.protocol = "phase-sum-lead";
    spec.deviation = "phase-sum";  // canonical k = 4 placement
    spec.target = static_cast<Value>(n - 3);
    spec.n = n;
    spec.trials = 25;
    spec.seed = 5 * n;
    sweep.add(spec);
  }
  const auto results = h.run_sweep(sweep);

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const ScenarioResult& r = results[i];
    std::printf("%7d    4   %14.4f   %4.2f   %8llu\n", sizes[i],
                r.outcomes.leader_rate(sweep.scenarios[i].target), r.outcomes.fail_rate(),
                static_cast<unsigned long long>(r.max_sync_gap));
  }
  h.note("expected shape: Pr[w] = 1 with k fixed at 4 for every n — contrast with");
  h.note("E7 where the random-f protocol needs k ~ sqrt(n); sync gap stays O(k):");
  h.note("the covert channel defeats the sum despite intact synchronization");
  return 0;
}
