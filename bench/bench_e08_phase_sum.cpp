// E8 (Appendix E.4): phase validation with a *sum* output (PhaseSumLead)
// falls to a constant coalition of k = 4 via the validation covert channel
// — the ablation that motivates PhaseAsyncLead's random function.

#include <cstdio>

#include "analysis/experiment.h"
#include "attacks/phase_sum_attack.h"
#include "bench_util.h"
#include "protocols/phase_sum_lead.h"

int main() {
  using namespace fle;
  bench::title("E8 / Appendix E.4 (ablation: sum output instead of random f)",
               "PhaseSumLead: k = 4 adversaries control any ring size");
  bench::row_header("      n    k   attacked Pr[w]   FAIL   sync gap");

  for (const int n : {32, 64, 128, 256, 512, 1024}) {
    PhaseSumLeadProtocol protocol(n);
    const Value w = static_cast<Value>(n - 3);
    PhaseSumDeviation deviation(PhaseSumDeviation::placement(n), w, protocol);
    ExperimentConfig cfg;
    cfg.n = n;
    cfg.trials = 25;
    cfg.seed = 5 * n;
    const auto r = run_trials(protocol, &deviation, cfg);
    std::printf("%7d    4   %14.4f   %4.2f   %8llu\n", n, r.outcomes.leader_rate(w),
                r.outcomes.fail_rate(), static_cast<unsigned long long>(r.max_sync_gap));
  }
  bench::note("expected shape: Pr[w] = 1 with k fixed at 4 for every n — contrast with");
  bench::note("E7 where the random-f protocol needs k ~ sqrt(n); sync gap stays O(k):");
  bench::note("the covert channel defeats the sum despite intact synchronization");
  return 0;
}
