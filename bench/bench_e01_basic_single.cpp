// E1 (Claim B.1): Basic-LEAD falls to a single adversary.
// Rows: n, target w, honest Pr[w], attacked Pr[w], FAIL rate.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace fle;
  bench::Harness h("e01", "E1 / Claim B.1",
                   "Basic-LEAD: one adversary forces any outcome");
  h.note("paper: Pr[outcome = w] = 1 for every target w (honest: 1/n)");
  h.row_header("     n   target   honest Pr[w]   attacked Pr[w]   FAIL");

  for (const int n : {8, 32, 128, 256}) {
    ScenarioSpec honest;
    honest.protocol = "basic-lead";
    honest.n = n;
    honest.trials = 2000;
    honest.seed = 42;
    const auto honest_r = h.run(honest, "honest");

    for (const Value w : {Value{0}, static_cast<Value>(n / 2)}) {
      ScenarioSpec attacked = honest;
      attacked.deviation = "basic-single";
      attacked.coalition = CoalitionSpec::consecutive(1, /*first=*/n / 3 + 1);
      attacked.target = w;
      attacked.trials = 200;
      attacked.seed = 7 * n + w;
      const auto r = h.run(attacked, "attacked");
      std::printf("%6d   %6llu   %12.4f   %14.4f   %4.2f\n", n,
                  static_cast<unsigned long long>(w), honest_r.outcomes.leader_rate(w),
                  r.outcomes.leader_rate(w), r.outcomes.fail_rate());
    }
  }
  h.note("expected shape: attacked Pr[w] = 1.0000 in every row");
  return 0;
}
