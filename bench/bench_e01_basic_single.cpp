// E1 (Claim B.1): Basic-LEAD falls to a single adversary.
// Rows: n, target w, honest Pr[w], attacked Pr[w], FAIL rate.
//
// The whole table runs as ONE sweep: honest 2000-trial baselines and
// 200-trial attacked runs share the executor's work queue (api/sweep.h).

#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e01", "E1 / Claim B.1",
                   "Basic-LEAD: one adversary forces any outcome",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.note("paper: Pr[outcome = w] = 1 for every target w (honest: 1/n)");
  h.row_header("     n   target   honest Pr[w]   attacked Pr[w]   FAIL");

  const std::vector<int> sizes = {8, 32, 128, 256};
  SweepSpec sweep;
  std::vector<std::string> labels;
  for (const int n : sizes) {
    ScenarioSpec honest;
    honest.protocol = "basic-lead";
    honest.n = n;
    honest.trials = 2000;
    honest.seed = 42;
    sweep.add(honest);
    labels.emplace_back("honest");

    for (const Value w : {Value{0}, static_cast<Value>(n / 2)}) {
      ScenarioSpec attacked = honest;
      attacked.deviation = "basic-single";
      attacked.coalition = CoalitionSpec::consecutive(1, /*first=*/n / 3 + 1);
      attacked.target = w;
      attacked.trials = 200;
      attacked.seed = 7 * n + w;
      sweep.add(attacked);
      labels.emplace_back("attacked");
    }
  }
  const auto results = h.run_sweep(sweep, labels);

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const int n = sizes[i];
    const ScenarioResult& honest_r = results[3 * i];
    for (int t = 0; t < 2; ++t) {
      const ScenarioResult& r = results[3 * i + 1 + static_cast<std::size_t>(t)];
      const Value w = sweep.scenarios[3 * i + 1 + static_cast<std::size_t>(t)].target;
      std::printf("%6d   %6llu   %12.4f   %14.4f   %4.2f\n", n,
                  static_cast<unsigned long long>(w), honest_r.outcomes.leader_rate(w),
                  r.outcomes.leader_rate(w), r.outcomes.fail_rate());
    }
  }
  h.note("expected shape: attacked Pr[w] = 1.0000 in every row");
  return 0;
}
