// E1 (Claim B.1): Basic-LEAD falls to a single adversary.
// Rows: n, target w, honest Pr[w], attacked Pr[w], FAIL rate.

#include <cstdio>

#include "analysis/experiment.h"
#include "attacks/basic_single.h"
#include "bench_util.h"
#include "protocols/basic_lead.h"

int main() {
  using namespace fle;
  bench::title("E1 / Claim B.1", "Basic-LEAD: one adversary forces any outcome");
  bench::note("paper: Pr[outcome = w] = 1 for every target w (honest: 1/n)");
  bench::row_header("     n   target   honest Pr[w]   attacked Pr[w]   FAIL");

  BasicLeadProtocol protocol;
  for (const int n : {8, 32, 128, 256}) {
    ExperimentConfig honest_cfg;
    honest_cfg.n = n;
    honest_cfg.trials = 2000;
    honest_cfg.seed = 42;
    const auto honest = run_trials(protocol, nullptr, honest_cfg);

    for (const Value w : {Value{0}, static_cast<Value>(n / 2)}) {
      BasicSingleDeviation deviation(n, /*adversary=*/n / 3 + 1, w);
      ExperimentConfig cfg;
      cfg.n = n;
      cfg.trials = 200;
      cfg.seed = 7 * n + w;
      const auto attacked = run_trials(protocol, &deviation, cfg);
      std::printf("%6d   %6llu   %12.4f   %14.4f   %4.2f\n", n,
                  static_cast<unsigned long long>(w), honest.outcomes.leader_rate(w),
                  attacked.outcomes.leader_rate(w), attacked.outcomes.fail_rate());
    }
  }
  bench::note("expected shape: attacked Pr[w] = 1.0000 in every row");
  return 0;
}
