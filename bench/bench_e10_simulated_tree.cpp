// E10 (Claim F.5 / Theorem 7.2): every connected graph is a
// ceil(n/2)-simulated tree (constructive partition), and on simulated-tree
// protocols an assuring part of size <= k exists.

#include <algorithm>
#include <cstdio>

#include "harness.h"
#include "trees/partition.h"
#include "trees/tree_protocols.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e10", "E10 / Claim F.5 + Theorem 7.2",
                   "Half-partitions of random graphs; assuring parts on simulated trees",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header("     n   graphs   valid simulations   max width   width bound");

  for (const int n : {8, 16, 32, 64, 128}) {
    const int graphs = 50;
    int valid = 0;
    int max_width = 0;
    for (std::uint64_t seed = 0; seed < graphs; ++seed) {
      const auto g = Graph::random_connected(n, static_cast<int>(seed % 17), seed * 11 + n);
      const auto sim = half_partition(g);
      valid += is_valid_simulation(g, sim, (n + 1) / 2) ? 1 : 0;
      max_width = std::max(max_width, sim.width());
    }
    std::printf("%6d   %6d   %17d   %9d   %11d\n", n, graphs, valid, max_width,
                (n + 1) / 2);
    bench::JsonObject row;
    row.set("label", "half-partition")
        .set("n", n)
        .set("graphs", graphs)
        .set("valid", valid)
        .set("max_width", max_width)
        .set("width_bound", (n + 1) / 2);
    h.add_row(row);
  }

  h.note("expected shape: valid = graphs, width <= ceil(n/2) in every row");
  h.note("assuring-part demo on last-mover games over the two-arc ring simulation:");
  h.row_header("  ring n   part width k   assuring part found   forces both bits");
  for (const int n : {4, 8, 12, 16, 20}) {
    const auto sim = ring_as_two_arc_simulation(n);
    auto say = [&](int owner) {
      std::vector<std::unique_ptr<GameNode>> kids;
      kids.push_back(GameTree::leaf(0));
      kids.push_back(GameTree::leaf(1));
      return GameTree::choice(owner, std::move(kids));
    };
    std::vector<std::unique_ptr<GameNode>> outer;
    outer.push_back(say(n - 1));
    outer.push_back(say(n - 1));
    GameTree g(GameTree::choice(1, std::move(outer)), n);
    const auto part = find_assuring_part(g, sim);
    bool both = false;
    if (part) {
      const auto masks = part_masks(sim);
      const auto m = masks[static_cast<std::size_t>(part->part_index)];
      both = g.assures(m, 0) && g.assures(m, 1);
    }
    std::printf("%8d   %12d   %19s   %16s\n", n, sim.width(), part ? "yes" : "NO",
                both ? "yes" : "no");
    bench::JsonObject row;
    row.set("label", "assuring-part")
        .set("n", n)
        .set("width", sim.width())
        .set("found", part.has_value())
        .set("forces_both", both);
    h.add_row(row);
  }
  h.note("expected shape: a part of size ceil(n/2) assures (Theorem 7.2's coalition)");
  return 0;
}
