// E9 (Lemma F.2): every finite two-party coin-toss protocol has an assuring
// player; fair protocols included.  Table: over random protocol trees, how
// often each assurance pattern occurs, and verification that both
// disjunctions of the lemma hold universally.  The last-mover dictatorship
// is additionally exercised live through the Scenario API's tree topology —
// all 14 force-0/force-1 scenarios run as ONE sweep (Harness::run_sweep).

#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "trees/tree_protocols.h"
#include "trees/two_party.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e09", "E9 / Lemma F.2",
                   "Two-party coin toss: an assuring player always exists",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();
  h.row_header(" depth   trees   disj1   disj2   dictator   A-assures   B-assures");

  for (const int depth : {2, 3, 4, 6, 8}) {
    const int trees = 300;
    int disj1 = 0, disj2 = 0, dictator = 0, a_any = 0, b_any = 0;
    for (std::uint64_t seed = 0; seed < trees; ++seed) {
      const auto g = GameTree::random(2, depth, 3, seed * 131 + depth);
      const auto r = solve_two_party(g);
      disj1 += r.disjunction_one() ? 1 : 0;
      disj2 += r.disjunction_two() ? 1 : 0;
      dictator += r.has_dictator() ? 1 : 0;
      a_any += (r.a_assures_0 || r.a_assures_1) ? 1 : 0;
      b_any += (r.b_assures_0 || r.b_assures_1) ? 1 : 0;
    }
    std::printf("%6d   %5d   %5d   %5d   %8d   %9d   %9d\n", depth, trees, disj1, disj2,
                dictator, a_any, b_any);
    bench::JsonObject row;
    row.set("label", "lemma-f2-sweep")
        .set("depth", depth)
        .set("trees", trees)
        .set("disj1", disj1)
        .set("disj2", disj2)
        .set("dictator", dictator);
    h.add_row(row);
  }

  h.note("expected shape: disj1 = disj2 = trees in every row (the lemma);");
  h.note("alternating-XOR sanity: the last mover dictates at every round count,");
  h.note("sampled live via the tree-topology scenario (both target bits forced)");
  h.row_header(" rounds   last mover forces 0   last mover forces 1   first assures anything");

  const std::vector<int> round_counts = {1, 2, 3, 4, 5, 6, 7};
  SweepSpec sweep;
  std::vector<std::string> labels;
  for (const int rounds : round_counts) {
    ScenarioSpec spec;
    spec.topology = TopologyKind::kTree;
    spec.protocol = "alternating-xor";
    spec.deviation = "xor-last-mover";
    spec.rounds = rounds;
    spec.n = 2;
    spec.trials = 64;
    spec.seed = 100 + rounds;
    spec.target = 0;
    sweep.add(spec);
    labels.emplace_back("force-0");
    spec.target = 1;
    sweep.add(spec);
    labels.emplace_back("force-1");
  }
  const auto results = h.run_sweep(sweep, labels);

  for (std::size_t i = 0; i < round_counts.size(); ++i) {
    const int rounds = round_counts[i];
    const ScenarioResult& zero = results[2 * i];
    const ScenarioResult& one = results[2 * i + 1];
    const bool forces0 = zero.outcomes.count(0) == zero.trials;
    const bool forces1 = one.outcomes.count(1) == one.trials;

    const auto g = alternating_xor_game(rounds);
    const std::uint32_t last_mask = ((rounds - 1) % 2 == 0) ? 0b01u : 0b10u;
    const std::uint32_t first_mask = 0b11u ^ last_mask;
    const bool first_any = g.assures(first_mask, 0) || g.assures(first_mask, 1);
    std::printf("%7d   %19s   %19s   %22s\n", rounds, forces0 ? "yes" : "NO",
                forces1 ? "yes" : "NO", first_any ? "YES" : "no");
  }
  return 0;
}
