// E15 (Section 1.1, reproduced): the synchronous scenarios.  Abraham et
// al.'s synchronous fully-connected and ring elections are optimally
// resilient (k = n-1): synchrony makes "wait, then choose" structurally
// impossible and silence detectable.  The full four-scenario resilience
// ladder is now measured end to end.
//
// All six (n, deviation) cells run as ONE sweep (Harness::run_sweep).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace fle;
  bench::Harness h("e15", "E15 / Section 1.1 synchronous scenarios",
                   "Sync broadcast & ring elections: optimal k = n-1 resilience",
                   bench::BenchArgs(argc, argv));
  if (h.merge_mode()) return h.merge_shards();

  const std::vector<int> sizes = {8, 16, 32};
  SweepSpec sweep;
  sweep.threads = 0;
  std::vector<std::string> labels;
  for (const int n : sizes) {
    // (a) n-1 colluders with blind fixed values: outcome stays uniform.
    {
      ScenarioSpec spec;
      spec.topology = TopologyKind::kSync;
      spec.protocol = "sync-broadcast-lead";
      spec.deviation = "sync-blind-collusion";
      std::vector<ProcessorId> members;  // everyone except the lone honest n/2
      for (ProcessorId p = 0; p < n; ++p) {
        if (p != n / 2) members.push_back(p);
      }
      spec.coalition = CoalitionSpec::custom(members);
      spec.n = n;
      spec.trials = 2000;
      spec.seed = 31 * n;
      sweep.add(spec);
      labels.emplace_back("blind-collusion");
    }
    // (b) one late broadcaster (the async-winning rushing move): detected.
    {
      ScenarioSpec spec;
      spec.topology = TopologyKind::kSync;
      spec.protocol = "sync-broadcast-lead";
      spec.deviation = "sync-late-broadcast";
      spec.coalition = CoalitionSpec::consecutive(1, 1);
      spec.n = n;
      spec.trials = 50;
      spec.seed = 7 * n + 1;
      sweep.add(spec);
      labels.emplace_back("late-broadcast");
    }
  }
  const auto results = h.run_sweep(sweep, labels);

  h.row_header("     n   deviation              valid   FAIL   max bias");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const int n = sizes[i];
    {
      const ScenarioResult& r = results[2 * i];
      double max_rate = 0;
      for (Value j = 0; j < static_cast<Value>(n); ++j) {
        max_rate = std::max(max_rate, r.outcomes.leader_rate(j));
      }
      std::printf("%6d   %-22s %5.2f   %4.2f   %8.4f\n", n, "k=n-1 blind collusion",
                  1.0 - r.outcomes.fail_rate(), r.outcomes.fail_rate(),
                  max_rate - 1.0 / n);
    }
    {
      const ScenarioResult& r = results[2 * i + 1];
      std::printf("%6d   %-22s %5.2f   %4.2f   %8s\n", n, "k=1 late broadcast",
                  1.0 - r.outcomes.fail_rate(), r.outcomes.fail_rate(), "-");
    }
  }
  h.note("expected shape: blind collusion leaves bias ~ 0 even at k = n-1;");
  h.note("the rushing move that wins in asynchrony is detected 100% here.");
  h.note("Resilience ladder, all measured: sync n-1 > async-FC n/2 >");
  h.note("async ring sqrt(n) [PhaseAsyncLead] > n^(1/3) [A-LEADuni] > tree k");
  return 0;
}
