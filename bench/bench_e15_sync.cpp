// E15 (Section 1.1, reproduced): the synchronous scenarios.  Abraham et
// al.'s synchronous fully-connected and ring elections are optimally
// resilient (k = n-1): synchrony makes "wait, then choose" structurally
// impossible and silence detectable.  The full four-scenario resilience
// ladder is now measured end to end.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "protocols/sync_lead.h"
#include "sim/sync_engine.h"

namespace {

using namespace fle;

/// n-1 colluders broadcast fixed values; one honest processor remains.
class FixedValueColluder final : public SyncStrategy {
 public:
  explicit FixedValueColluder(Value v) : v_(v) {}
  void on_round(SyncContext& ctx, const SyncInbox& inbox) override {
    const auto n = static_cast<Value>(ctx.network_size());
    if (ctx.round() == 1) {
      ctx.broadcast({v_ % n});
      return;
    }
    Value sum = v_ % n;
    for (const auto& [from, m] : inbox) sum = (sum + m[0]) % n;
    ctx.terminate(sum);
  }

 private:
  Value v_;
};

/// Waits one round before broadcasting (the asynchronous winning move).
class LateBroadcaster final : public SyncStrategy {
 public:
  void on_round(SyncContext& ctx, const SyncInbox& inbox) override {
    const auto n = static_cast<Value>(ctx.network_size());
    if (ctx.round() == 1) return;
    if (ctx.round() == 2) {
      Value others = 0;
      for (const auto& [from, m] : inbox) others = (others + m[0]) % n;
      ctx.broadcast({(n - others % n) % n});
      return;
    }
    ctx.terminate(0);
  }
};

}  // namespace

int main() {
  using namespace fle;
  bench::title("E15 / Section 1.1 synchronous scenarios",
               "Sync broadcast & ring elections: optimal k = n-1 resilience");

  bench::row_header("     n   deviation              valid   FAIL   max bias");
  SyncBroadcastLeadProtocol protocol;
  for (const int n : {8, 16, 32}) {
    // (a) n-1 colluders with blind fixed values: outcome stays uniform.
    {
      std::vector<int> counts(static_cast<std::size_t>(n), 0);
      const int trials = 2000;
      int fails = 0;
      for (int t = 0; t < trials; ++t) {
        SyncEngine engine(n, static_cast<std::uint64_t>(t) * 31 + n);
        std::vector<std::unique_ptr<SyncStrategy>> s;
        for (ProcessorId p = 0; p < n; ++p) {
          if (p == n / 2) {
            s.push_back(protocol.make_strategy(p, n));  // lone honest
          } else {
            s.push_back(std::make_unique<FixedValueColluder>(static_cast<Value>(p)));
          }
        }
        const Outcome o = engine.run(std::move(s));
        if (o.failed()) {
          ++fails;
        } else {
          ++counts[static_cast<std::size_t>(o.leader())];
        }
      }
      double max_rate = 0;
      for (const int c : counts) max_rate = std::max(max_rate, static_cast<double>(c) / trials);
      std::printf("%6d   %-22s %5.2f   %4.2f   %8.4f\n", n, "k=n-1 blind collusion",
                  1.0 - static_cast<double>(fails) / trials,
                  static_cast<double>(fails) / trials, max_rate - 1.0 / n);
    }
    // (b) one late broadcaster (the async-winning rushing move): detected.
    {
      int fails = 0;
      const int trials = 50;
      for (int t = 0; t < trials; ++t) {
        SyncEngine engine(n, static_cast<std::uint64_t>(t) * 7 + 1);
        std::vector<std::unique_ptr<SyncStrategy>> s;
        for (ProcessorId p = 0; p < n; ++p) {
          if (p == 1) {
            s.push_back(std::make_unique<LateBroadcaster>());
          } else {
            s.push_back(protocol.make_strategy(p, n));
          }
        }
        fails += engine.run(std::move(s)).failed() ? 1 : 0;
      }
      std::printf("%6d   %-22s %5.2f   %4.2f   %8s\n", n, "k=1 late broadcast",
                  1.0 - static_cast<double>(fails) / trials,
                  static_cast<double>(fails) / trials, "-");
    }
  }
  bench::note("expected shape: blind collusion leaves bias ~ 0 even at k = n-1;");
  bench::note("the rushing move that wins in asynchrony is detected 100% here.");
  bench::note("Resilience ladder, all measured: sync n-1 > async-FC n/2 >");
  bench::note("async ring sqrt(n) [PhaseAsyncLead] > n^(1/3) [A-LEADuni] > tree k");
  return 0;
}
