#include "harness.h"

// Counting allocator shim: every bench binary links this library, so the
// shim replaces the global operator new/delete for the whole process and
// makes allocation churn measurable per scenario run.
#include "core/counting_new.inc"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>

#include "verify/fuzzer.h"
#include "verify/shard.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fle::bench {

std::uint64_t allocation_count() {
  return counting_new::allocations.load(std::memory_order_relaxed);
}

std::uint64_t peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

BenchArgs::BenchArgs(int argc, char** argv) {
  const auto fail = [&] {
    std::fprintf(stderr, "usage: %s [--shard I/M] [--merge]\n", argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--merge") == 0) {
      merge = true;
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      if (i + 1 >= argc) fail();
      const char* text = argv[++i];
      char* end = nullptr;
      shard_index = static_cast<int>(std::strtol(text, &end, 10));
      if (end == text || *end != '/') fail();
      const char* count = end + 1;
      shard_count = static_cast<int>(std::strtol(count, &end, 10));
      if (end == count || *end != '\0' || shard_count < 1 || shard_index < 0 ||
          shard_index >= shard_count) {
        fail();
      }
    } else {
      fail();
    }
  }
  if (merge && shard_count > 1) fail();  // merge reads files, it does not run
}

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string render_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

}  // namespace

JsonObject& JsonObject::raw(const std::string& key, std::string rendered) {
  fields_.emplace_back(key, std::move(rendered));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  quoted += escape(value);
  quoted += '"';
  return raw(key, std::move(quoted));
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  return raw(key, render_double(value));
}

JsonObject& JsonObject::set(const std::string& key, std::uint64_t value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::set(const std::string& key, int value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  return raw(key, value ? "true" : "false");
}

std::string JsonObject::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += escape(fields_[i].first);
    out += "\": ";
    out += fields_[i].second;
  }
  out += '}';
  return out;
}

Harness::Harness(std::string file_id, std::string title, std::string claim, BenchArgs args)
    : file_id_(std::move(file_id)),
      title_(std::move(title)),
      claim_(std::move(claim)),
      args_(args) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title_.c_str());
  if (args_.merge) {
    std::printf("(merging shard files into BENCH_%s.json)\n", file_id_.c_str());
  } else if (args_.sharded()) {
    std::printf("(shard %d/%d: partial trial windows, rows go to the shard JSONL)\n",
                args_.shard_index, args_.shard_count);
  }
  std::printf("%s\n", claim_.c_str());
  std::printf("================================================================\n");
}

Harness::~Harness() {
  // A failed merge writes nothing: clobbering a previously good
  // BENCH_<id>.json with an empty document would make the failure look
  // like a successful zero-row run to downstream tooling.
  if (!write_output_) return;
  if (args_.sharded()) {
    const std::string path = "BENCH_" + file_id_ + ".shard_" +
                             std::to_string(args_.shard_index) + "_of_" +
                             std::to_string(args_.shard_count) + ".jsonl";
    std::ofstream out(path);
    if (!out) return;
    for (const std::string& row : shard_rows_) out << row << "\n";
    for (std::size_t i = 0; i < shard_passthrough_.size(); ++i) {
      verify::ShardRow row;
      row.case_index = shard_passthrough_cases_[i];
      row.passthrough = shard_passthrough_[i].str();
      out << verify::format_shard_row(row) << "\n";
    }
    return;
  }
  const std::string path = "BENCH_" + file_id_ + ".json";
  std::ofstream out(path);
  if (!out) return;
  out << "{\n  \"id\": \"" << escape(title_) << "\",\n  \"claim\": \"" << escape(claim_)
      << "\",\n  \"rows\": [\n";
  std::vector<std::string> rendered;
  if (args_.merge) {
    rendered = merged_rows_;
  } else {
    rendered.reserve(rows_.size());
    for (const JsonObject& row : rows_) rendered.push_back(row.str());
  }
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    out << "    " << rendered[i] << (i + 1 < rendered.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void Harness::note(const std::string& text) { std::printf("-- %s\n", text.c_str()); }

void Harness::row_header(const std::string& cols) {
  std::printf("%s\n", cols.c_str());
  std::printf("----------------------------------------------------------------\n");
}

bool Harness::apply_shard(ScenarioSpec& spec) const {
  if (!args_.sharded()) return true;
  const auto m = static_cast<std::size_t>(args_.shard_count);
  const auto i = static_cast<std::size_t>(args_.shard_index);
  const std::size_t lo = spec.trials * i / m;
  const std::size_t hi = spec.trials * (i + 1) / m;
  if (hi == lo) return false;  // fewer trials than shards: nothing here
  spec.trial_offset = lo;
  spec.trial_count = hi - lo;
  return true;
}

JsonObject Harness::display_row(const ScenarioSpec& spec, const std::string& label,
                                const ScenarioResult& result, std::uint64_t allocations,
                                bool in_sweep) const {
  JsonObject row;
  if (!label.empty()) row.set("label", label);
  row.set("topology", to_string(spec.topology))
      .set("protocol", spec.protocol)
      .set("protocol_name", result.protocol_name)
      .set("deviation", spec.deviation)
      .set("n", spec.n)
      .set("trials", static_cast<std::uint64_t>(spec.trials))
      .set("seed", spec.seed)
      .set("scheduler", to_string(spec.scheduler))
      .set("threads", spec.threads)
      .set("engine", to_string(spec.engine))
      .set("lanes", spec.lanes)
      .set("target", spec.target)
      .set("fail_rate", result.outcomes.fail_rate())
      .set("target_rate",
           result.outcomes.trials() > 0 && spec.target < static_cast<Value>(spec.n)
               ? result.outcomes.leader_rate(spec.target)
               : 0.0)
      .set("max_bias", result.outcomes.trials() > 0 ? result.outcomes.max_bias() : 0.0)
      .set("mean_messages", result.mean_messages)
      .set("max_messages", result.max_messages)
      .set("max_sync_gap", result.max_sync_gap)
      .set("mean_sync_gap", result.mean_sync_gap)
      .set("max_rounds", result.max_rounds)
      .set("wall_seconds", result.wall_seconds)
      .set("trials_per_second",
           result.wall_seconds > 0.0
               ? static_cast<double>(result.trials) / result.wall_seconds
               : 0.0)
      .set("allocations", allocations)
      .set("allocations_per_trial",
           result.trials > 0
               ? static_cast<double>(allocations) / static_cast<double>(result.trials)
               : 0.0)
      .set("peak_rss_kib", peak_rss_kib());
  if (in_sweep) row.set("sweep", true);
  return row;
}

void Harness::record(std::size_t case_index, const ScenarioSpec& spec,
                     const std::string& label, const ScenarioResult& result,
                     std::uint64_t allocations, bool in_sweep) {
  last_row_was_passthrough_ = false;
  if (args_.sharded()) {
    verify::ShardRow row;
    row.case_index = case_index;
    row.label = label;
    row.spec_line = verify::format_spec(verify::shard_key_spec(spec));
    row.allocations = allocations;
    row.result = result;
    shard_rows_.push_back(verify::format_shard_row(row));
  } else {
    rows_.push_back(display_row(spec, label, result, allocations, in_sweep));
  }
}

ScenarioResult Harness::run(const ScenarioSpec& spec, const std::string& label) {
  ScenarioSpec windowed = spec;
  const std::size_t case_index = case_counter_++;
  if (!apply_shard(windowed)) {
    // This shard's slice of the scenario is empty: return a zero-trial
    // result (the printed table shows zeros; no row is recorded, the other
    // shards cover the trials).
    ScenarioResult empty(std::max(spec.n, 1));
    empty.spec_trials = spec.trials;
    empty.base_seed = spec.seed;
    return empty;
  }
  const std::uint64_t allocations_before = allocation_count();
  ScenarioResult result = run_scenario(windowed);
  const std::uint64_t allocations = allocation_count() - allocations_before;
  record(case_index, windowed, label, result, allocations, /*in_sweep=*/false);
  return result;
}

std::vector<ScenarioResult> Harness::run_sweep(SweepSpec sweep,
                                               const std::vector<std::string>& labels) {
  // Window every scenario for this shard; empty slices drop out of the
  // executed sweep but keep their case index so shards stay aligned.
  std::vector<std::size_t> case_of_scenario;
  std::vector<std::size_t> original_of_executed;
  std::vector<std::size_t> executed_of_result(sweep.scenarios.size(),
                                              static_cast<std::size_t>(-1));
  SweepSpec windowed;
  windowed.threads = sweep.threads;
  windowed.chunk = sweep.chunk;
  for (std::size_t i = 0; i < sweep.scenarios.size(); ++i) {
    ScenarioSpec spec = sweep.scenarios[i];
    const std::size_t case_index = case_counter_++;
    if (!apply_shard(spec)) continue;
    executed_of_result[i] = windowed.scenarios.size();
    original_of_executed.push_back(i);
    windowed.add(std::move(spec));
    case_of_scenario.push_back(case_index);
  }

  const std::uint64_t allocations_before = allocation_count();
  const std::vector<ScenarioResult> executed = fle::run_sweep(windowed);
  const std::uint64_t total_allocations = allocation_count() - allocations_before;

  // Attribute the sweep's allocations evenly (remainder on the first row)
  // so the recorded rows still sum to the measured total.
  const std::size_t rows = executed.size();
  const std::uint64_t share = rows > 0 ? total_allocations / rows : 0;
  const std::uint64_t remainder = rows > 0 ? total_allocations % rows : 0;
  for (std::size_t s = 0; s < rows; ++s) {
    const std::size_t original = original_of_executed[s];
    const std::string label = original < labels.size() ? labels[original] : std::string();
    record(case_of_scenario[s], windowed.scenarios[s], label, executed[s],
           share + (s == 0 ? remainder : 0), /*in_sweep=*/true);
  }

  // Hand back one result per requested scenario, zero-filled where this
  // shard's slice was empty.
  std::vector<ScenarioResult> results;
  results.reserve(sweep.scenarios.size());
  for (std::size_t i = 0; i < sweep.scenarios.size(); ++i) {
    if (executed_of_result[i] != static_cast<std::size_t>(-1)) {
      results.push_back(executed[executed_of_result[i]]);
    } else {
      ScenarioResult empty(std::max(sweep.scenarios[i].n, 1));
      empty.spec_trials = sweep.scenarios[i].trials;
      empty.base_seed = sweep.scenarios[i].seed;
      results.push_back(std::move(empty));
    }
  }
  return results;
}

int Harness::merge_shards() {
  namespace fs = std::filesystem;
  const std::string prefix = "BENCH_" + file_id_ + ".shard_";
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(fs::current_path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 && name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".jsonl") == 0) {
      files.push_back(entry.path().string());
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "no %s*.jsonl shard files in the working directory\n",
                 prefix.c_str());
    return 1;
  }
  try {
    std::vector<verify::ShardRow> rows;
    for (const std::string& path : files) {
      std::ifstream in(path);
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty()) rows.push_back(verify::parse_shard_row(line));
      }
    }
    const auto merged = verify::merge_shard_rows(std::move(rows));
    for (const auto& [index, merged_case] : merged) {
      (void)index;
      if (!merged_case.passthrough.empty()) {
        merged_rows_.push_back(merged_case.passthrough);
        continue;
      }
      const ScenarioSpec spec = verify::parse_spec(merged_case.spec_line);
      merged_rows_.push_back(display_row(spec, merged_case.label, merged_case.result,
                                         merged_case.allocations, /*in_sweep=*/false)
                                 .str());
    }
    std::printf("merged %zu shard files (%zu rows) into BENCH_%s.json\n", files.size(),
                merged_rows_.size(), file_id_.c_str());
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "merge failed: %s (keeping any existing BENCH_%s.json)\n",
                 error.what(), file_id_.c_str());
    write_output_ = false;
    return 1;
  }
}

void Harness::add_row(JsonObject row) {
  const std::size_t case_index = case_counter_++;
  last_row_was_passthrough_ = true;
  if (args_.sharded()) {
    // Hand-built rows are not trial-sharded — every shard computes them
    // identically, so shard 0 alone carries them into the merge.
    if (args_.shard_index == 0) {
      shard_passthrough_.push_back(std::move(row));
      shard_passthrough_cases_.push_back(case_index);
    }
    return;
  }
  rows_.push_back(std::move(row));
}

void Harness::annotate_row(std::size_t index, const std::string& key, double value) {
  if (args_.sharded()) {
    // Same rationale as annotate(): per-row derived values cannot merge
    // from partial trials.
    if (!annotate_warned_) {
      annotate_warned_ = true;
      std::fprintf(stderr,
                   "warning: annotate_row(%zu, \"%s\", ...) is dropped under --shard "
                   "(derived from partial trials; re-run unsharded for it)\n",
                   index, key.c_str());
    }
    return;
  }
  if (index >= rows_.size()) return;
  rows_[index].set(key, value);
}

void Harness::annotate(const std::string& key, double value) {
  if (args_.sharded()) {
    if (last_row_was_passthrough_) {
      if (args_.shard_index == 0 && !shard_passthrough_.empty()) {
        shard_passthrough_.back().set(key, value);
      }
      return;
    }
    // Annotations on scenario rows derive from this shard's partial
    // trials; merging them is not meaningful, so they are dropped loudly.
    if (!annotate_warned_) {
      annotate_warned_ = true;
      std::fprintf(stderr,
                   "warning: annotate(\"%s\", ...) on a scenario row is dropped under "
                   "--shard (derived from partial trials; re-run unsharded for it)\n",
                   key.c_str());
    }
    return;
  }
  if (rows_.empty()) return;
  rows_.back().set(key, value);
}

}  // namespace fle::bench
