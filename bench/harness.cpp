#include "harness.h"

// Counting allocator shim: every bench binary links this library, so the
// shim replaces the global operator new/delete for the whole process and
// makes allocation churn measurable per scenario run.
#include "core/counting_new.inc"

#include <cstdio>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace fle::bench {

std::uint64_t allocation_count() {
  return counting_new::allocations.load(std::memory_order_relaxed);
}

std::uint64_t peak_rss_kib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // KiB on Linux
#endif
#else
  return 0;
#endif
}

namespace {

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string render_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

}  // namespace

JsonObject& JsonObject::raw(const std::string& key, std::string rendered) {
  fields_.emplace_back(key, std::move(rendered));
  return *this;
}

JsonObject& JsonObject::set(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  quoted += escape(value);
  quoted += '"';
  return raw(key, std::move(quoted));
}

JsonObject& JsonObject::set(const std::string& key, const char* value) {
  return set(key, std::string(value));
}

JsonObject& JsonObject::set(const std::string& key, double value) {
  return raw(key, render_double(value));
}

JsonObject& JsonObject::set(const std::string& key, std::uint64_t value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::set(const std::string& key, int value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::set(const std::string& key, bool value) {
  return raw(key, value ? "true" : "false");
}

std::string JsonObject::str() const {
  std::string out = "{";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) out += ", ";
    out += '"';
    out += escape(fields_[i].first);
    out += "\": ";
    out += fields_[i].second;
  }
  out += '}';
  return out;
}

Harness::Harness(std::string file_id, std::string title, std::string claim)
    : file_id_(std::move(file_id)), title_(std::move(title)), claim_(std::move(claim)) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title_.c_str());
  std::printf("%s\n", claim_.c_str());
  std::printf("================================================================\n");
}

Harness::~Harness() {
  const std::string path = "BENCH_" + file_id_ + ".json";
  std::ofstream out(path);
  if (!out) return;
  out << "{\n  \"id\": \"" << escape(title_) << "\",\n  \"claim\": \"" << escape(claim_)
      << "\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out << "    " << rows_[i].str() << (i + 1 < rows_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

void Harness::note(const std::string& text) { std::printf("-- %s\n", text.c_str()); }

void Harness::row_header(const std::string& cols) {
  std::printf("%s\n", cols.c_str());
  std::printf("----------------------------------------------------------------\n");
}

ScenarioResult Harness::run(const ScenarioSpec& spec, const std::string& label) {
  const std::uint64_t allocations_before = allocation_count();
  ScenarioResult result = run_scenario(spec);
  const std::uint64_t allocations = allocation_count() - allocations_before;
  JsonObject row;
  if (!label.empty()) row.set("label", label);
  row.set("topology", to_string(spec.topology))
      .set("protocol", spec.protocol)
      .set("protocol_name", result.protocol_name)
      .set("deviation", spec.deviation)
      .set("n", spec.n)
      .set("trials", static_cast<std::uint64_t>(spec.trials))
      .set("seed", spec.seed)
      .set("scheduler", to_string(spec.scheduler))
      .set("threads", spec.threads)
      .set("target", spec.target)
      .set("fail_rate", result.outcomes.fail_rate())
      .set("target_rate",
           result.outcomes.trials() > 0 && spec.target < static_cast<Value>(spec.n)
               ? result.outcomes.leader_rate(spec.target)
               : 0.0)
      .set("max_bias", result.outcomes.trials() > 0 ? result.outcomes.max_bias() : 0.0)
      .set("mean_messages", result.mean_messages)
      .set("max_messages", result.max_messages)
      .set("max_sync_gap", result.max_sync_gap)
      .set("mean_sync_gap", result.mean_sync_gap)
      .set("max_rounds", result.max_rounds)
      .set("wall_seconds", result.wall_seconds)
      .set("trials_per_second",
           result.wall_seconds > 0.0
               ? static_cast<double>(result.trials) / result.wall_seconds
               : 0.0)
      .set("allocations", allocations)
      .set("allocations_per_trial",
           result.trials > 0
               ? static_cast<double>(allocations) / static_cast<double>(result.trials)
               : 0.0)
      .set("peak_rss_kib", peak_rss_kib());
  rows_.push_back(std::move(row));
  return result;
}

void Harness::add_row(JsonObject row) { rows_.push_back(std::move(row)); }

void Harness::annotate(const std::string& key, double value) {
  if (rows_.empty()) return;
  rows_.back().set(key, value);
}

}  // namespace fle::bench
